#![warn(missing_docs)]
//! Tile data and execution distributions.
//!
//! Distributed tile algorithms assign every tile an *owner* process. The
//! paper studies four layouts (its Fig. 3):
//!
//! * [`TwoDBlockCyclic`] — the ScaLAPACK 2D block-cyclic baseline (3a);
//! * [`LorapoHybrid`] — Lorapo's 1D-cyclic diagonal + 2D-cyclic
//!   off-diagonal mix (3b);
//! * [`BandDistribution`] — §VII-A: the sub-diagonal tile is bound to the
//!   same process as its diagonal tile, making the POTRF → first-TRSM
//!   dependency on the critical path a *local* transfer (3c);
//! * [`DiamondDistribution`] — §VII-B: a diamond-skewed 2D block-cyclic
//!   grid for off-band tiles, aligning process assignment with the
//!   rank-vs-distance-to-diagonal structure of compressed RBF matrices
//!   (3d). Used as an **execution** mapping: data stays where the user
//!   put it; only kernel execution is remapped (PaRSEC dissociates
//!   ownership from execution, shipping tiles in and results back).
//!
//! All distributions implement [`TileDistribution`]; process ids are dense
//! `0..nprocs`.

use serde::{Deserialize, Serialize};

/// Maps lower-triangle tile coordinates to owning processes.
pub trait TileDistribution: Sync {
    /// Owner process of tile `(i, j)`.
    ///
    /// # Precondition
    /// `(i, j)` must lie in the lower triangle, `i ≥ j`. Only the lower
    /// triangle is stored (the matrix is symmetric); callers that hold an
    /// upper-triangle coordinate must mirror it first. Band/diamond
    /// layouts compute the diagonal distance `i - j` and `debug_assert`
    /// this — in release builds an upper-triangle query silently wraps
    /// and returns an arbitrary (but in-range) owner.
    fn owner(&self, i: usize, j: usize) -> usize;

    /// Total number of processes.
    fn nprocs(&self) -> usize;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Pick a process grid `P × Q = nprocs` "as square as possible" with
/// `P ≤ Q` (the paper's §VIII-A convention).
///
/// ```
/// use tlr_distribution::process_grid;
/// assert_eq!(process_grid(512), (16, 32)); // the paper's production grid
/// assert_eq!(process_grid(6), (2, 3));     // Fig. 3's example
/// ```
pub fn process_grid(nprocs: usize) -> (usize, usize) {
    assert!(nprocs > 0, "need at least one process");
    let mut p = (nprocs as f64).sqrt().floor() as usize;
    while p > 1 && !nprocs.is_multiple_of(p) {
        p -= 1;
    }
    (p.max(1), nprocs / p.max(1))
}

/// ScaLAPACK-style 2D block-cyclic distribution over a `p × q` grid:
/// `owner(i, j) = (i mod p)·q + (j mod q)`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TwoDBlockCyclic {
    /// Process-grid rows.
    pub p: usize,
    /// Process-grid columns.
    pub q: usize,
}

impl TwoDBlockCyclic {
    /// Grid from a process count via [`process_grid`].
    pub fn new(nprocs: usize) -> Self {
        let (p, q) = process_grid(nprocs);
        Self { p, q }
    }
}

impl TileDistribution for TwoDBlockCyclic {
    fn owner(&self, i: usize, j: usize) -> usize {
        (i % self.p) * self.q + (j % self.q)
    }
    fn nprocs(&self) -> usize {
        self.p * self.q
    }
    fn name(&self) -> &'static str {
        "2DBCDD"
    }
}

/// 1D block-cyclic along the diagonal: tile `(i, j)` goes to process
/// `j mod nprocs`. Used for the diagonal/band portion of the hybrid
/// layouts, spreading the critical-path tiles round-robin.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OneDBlockCyclic {
    /// Number of processes.
    pub nprocs: usize,
}

impl TileDistribution for OneDBlockCyclic {
    fn owner(&self, _i: usize, j: usize) -> usize {
        j % self.nprocs
    }
    fn nprocs(&self) -> usize {
        self.nprocs
    }
    fn name(&self) -> &'static str {
        "1DBCDD"
    }
}

/// Lorapo's hybrid distribution (paper Fig. 3b): tiles within
/// `band_width` of the diagonal are 1D-cyclic (round-robin along the
/// diagonal); all other tiles are 2D block-cyclic.
///
/// `band_width = 1` reproduces Lorapo's published configuration
/// (diagonal tiles only).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LorapoHybrid {
    /// Tiles with `i − j < band_width` take the 1D layout.
    pub band_width: usize,
    /// 1D layout for the band.
    pub oned: OneDBlockCyclic,
    /// 2D layout elsewhere.
    pub twod: TwoDBlockCyclic,
}

impl LorapoHybrid {
    /// Standard Lorapo configuration over `nprocs` processes.
    pub fn new(nprocs: usize) -> Self {
        Self {
            band_width: 1,
            oned: OneDBlockCyclic { nprocs },
            twod: TwoDBlockCyclic::new(nprocs),
        }
    }
}

impl TileDistribution for LorapoHybrid {
    fn owner(&self, i: usize, j: usize) -> usize {
        debug_assert!(i >= j, "LorapoHybrid::owner requires a lower-triangle tile, got ({i}, {j})");
        if i - j < self.band_width {
            self.oned.owner(i, j)
        } else {
            self.twod.owner(i, j)
        }
    }
    fn nprocs(&self) -> usize {
        self.oned.nprocs
    }
    fn name(&self) -> &'static str {
        "Lorapo hybrid 1D+2D"
    }
}

/// The paper's band distribution (§VII-A, Fig. 3c): the diagonal **and**
/// the sub-diagonal share the same 1D-cyclic pattern, so the
/// `POTRF(k) → TRSM(k+1, k)` dependency on the critical path never
/// crosses a process boundary. Off-band tiles stay 2D block-cyclic.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BandDistribution {
    /// Width of the 1D band (2 = diagonal + sub-diagonal, the paper's
    /// setting).
    pub band_width: usize,
    /// 1D layout for the band, keyed by the panel index.
    pub oned: OneDBlockCyclic,
    /// 2D layout elsewhere.
    pub twod: TwoDBlockCyclic,
}

impl BandDistribution {
    /// Paper configuration: band of two (diagonal + sub-diagonal).
    pub fn new(nprocs: usize) -> Self {
        Self {
            band_width: 2,
            oned: OneDBlockCyclic { nprocs },
            twod: TwoDBlockCyclic::new(nprocs),
        }
    }
}

impl TileDistribution for BandDistribution {
    fn owner(&self, i: usize, j: usize) -> usize {
        debug_assert!(
            i >= j,
            "BandDistribution::owner requires a lower-triangle tile, got ({i}, {j})"
        );
        if i - j < self.band_width {
            // Key the whole band column on the panel index j so that
            // (k, k) and (k+1, k) land on the same process.
            self.oned.owner(j, j)
        } else {
            self.twod.owner(i, j)
        }
    }
    fn nprocs(&self) -> usize {
        self.oned.nprocs
    }
    fn name(&self) -> &'static str {
        "band"
    }
}

/// The rank-aware diamond-shaped distribution (§VII-B, Fig. 3d).
///
/// Off-diagonal ranks in compressed RBF operators depend almost entirely
/// on the tile's distance to the diagonal `d = i − j`. A rectangular
/// `p × q` block-cyclic grid couples that distance to the process
/// assignment whenever `gcd(p, q) = g > 1`: process `(r, c)` only ever
/// owns tiles with `d ≡ r − c (mod g)`, so with rank (and hence cost)
/// decaying sharply in `d`, whole processes end up with only cheap —
/// or only expensive — tiles. Production grids (16 × 32 at 512 nodes)
/// have large `g`, which is exactly the load imbalance of §VII-B.
///
/// The diamond skew staircases the grid: the row index follows the
/// distance to the diagonal, shifted by one every `q` columns:
/// `owner(i, j) = (((i − j) + j/q) mod p)·q + (j mod q)`. The repeating
/// unit cell in `(i, j)` space is a rhombus — the "diamond" of Fig. 3d.
/// Properties (all stated in the paper):
///
/// * every distance band `{(j+d, j)}` cycles over **all** `p·q`
///   processes (`j mod q` cycles the columns, `j/q` walks the rows), so
///   any cost profile that depends on the distance to the diagonal is
///   spread evenly — this is the rank-awareness;
/// * the *column* process group (fixed `j`) still spans only `p`
///   processes, as optimal as 2DBCDD — the two expensive column
///   broadcasts are unaffected;
/// * the *row* process group (fixed `i`) may span up to `p·q` processes,
///   which is acceptable because the row broadcast carries only a tiny
///   rank-`k` tile.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DiamondDistribution {
    /// Diamond-grid rows (indexed by distance to the diagonal).
    pub p: usize,
    /// Diamond-grid columns (indexed by position along the diagonal).
    pub q: usize,
}

impl DiamondDistribution {
    /// Grid from a process count via [`process_grid`].
    pub fn new(nprocs: usize) -> Self {
        let (p, q) = process_grid(nprocs);
        Self { p, q }
    }
}

impl TileDistribution for DiamondDistribution {
    fn owner(&self, i: usize, j: usize) -> usize {
        debug_assert!(
            i >= j,
            "DiamondDistribution::owner requires a lower-triangle tile, got ({i}, {j})"
        );
        let d = i - j; // distance to the diagonal (≥ 0 in the lower triangle)
        ((d + j / self.q) % self.p) * self.q + (j % self.q)
    }
    fn nprocs(&self) -> usize {
        self.p * self.q
    }
    fn name(&self) -> &'static str {
        "diamond"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owners_in_range(dist: &dyn TileDistribution, nt: usize) {
        for i in 0..nt {
            for j in 0..=i {
                let o = dist.owner(i, j);
                assert!(o < dist.nprocs(), "{} owner({i},{j})={o}", dist.name());
            }
        }
    }

    #[test]
    fn all_distributions_in_range() {
        let nt = 20;
        for np in [1usize, 2, 4, 6, 7, 12] {
            owners_in_range(&TwoDBlockCyclic::new(np), nt);
            owners_in_range(&OneDBlockCyclic { nprocs: np }, nt);
            owners_in_range(&LorapoHybrid::new(np), nt);
            owners_in_range(&BandDistribution::new(np), nt);
            owners_in_range(&DiamondDistribution::new(np), nt);
        }
    }

    #[test]
    fn process_grid_as_square_as_possible() {
        assert_eq!(process_grid(1), (1, 1));
        assert_eq!(process_grid(6), (2, 3));
        assert_eq!(process_grid(16), (4, 4));
        assert_eq!(process_grid(32), (4, 8));
        assert_eq!(process_grid(7), (1, 7)); // prime
        let (p, q) = process_grid(512);
        assert_eq!(p * q, 512);
        assert!(p <= q);
    }

    #[test]
    fn twod_matches_scalapack_pattern() {
        let d = TwoDBlockCyclic { p: 2, q: 3 };
        assert_eq!(d.owner(0, 0), 0);
        assert_eq!(d.owner(0, 1), 1);
        assert_eq!(d.owner(0, 2), 2);
        assert_eq!(d.owner(1, 0), 3);
        assert_eq!(d.owner(2, 0), 0); // wraps around rows
        assert_eq!(d.owner(0, 3), 0); // wraps around cols
    }

    #[test]
    fn band_colocates_potrf_and_first_trsm() {
        // §VII-A property: owner(k, k) == owner(k+1, k) for every panel.
        let d = BandDistribution::new(6);
        for k in 0..30 {
            assert_eq!(d.owner(k, k), d.owner(k + 1, k), "panel {k}");
        }
    }

    #[test]
    fn lorapo_does_not_colocate_subdiagonal() {
        // Lorapo's hybrid: the sub-diagonal is 2D-distributed, generally on
        // a different process than the diagonal tile (this is the remote
        // critical-path communication the band distribution removes).
        let d = LorapoHybrid::new(6);
        let misses = (0..30).filter(|&k| d.owner(k, k) != d.owner(k + 1, k)).count();
        assert!(misses > 15, "expected most panels to cross processes, got {misses}/30");
    }

    #[test]
    fn diamond_band_covers_all_processes() {
        // The load-balancing property: every distance band cycles over the
        // whole process grid (a rectangular grid with gcd(p, q) > 1 cannot
        // do this — bands stay pinned to distance classes).
        let d = DiamondDistribution { p: 4, q: 4 };
        let nt = 64;
        for dist in 1..6 {
            let mut owners: Vec<usize> =
                (0..nt - dist).map(|j| d.owner(j + dist, j)).collect();
            owners.sort_unstable();
            owners.dedup();
            assert_eq!(owners.len(), 16, "band {dist} must cover all 16 procs");
        }
        // Contrast: rectangular 4×4 pins each band to 4 processes.
        let r = TwoDBlockCyclic { p: 4, q: 4 };
        let mut owners: Vec<usize> = (0..nt - 1).map(|j| r.owner(j + 1, j)).collect();
        owners.sort_unstable();
        owners.dedup();
        assert_eq!(owners.len(), 4, "rectangular grid pins the band");
    }

    /// Load-balance property the diamond distribution exists for: on a
    /// square-ish grid (`gcd(p, q) > 1`, the production case) a
    /// rectangular 2DBCDD couples distance-to-diagonal to the process id,
    /// so a cost profile that decays with that distance lands on a few
    /// processes; the diamond skew decouples them.
    #[test]
    fn diamond_balances_rank_weighted_load_better_than_2d() {
        let nt = 64;
        let np = 16; // grid 4×4: gcd = 4 → 2DBCDD couples d mod 4 to procs
        let twod = TwoDBlockCyclic::new(np);
        let diamond = DiamondDistribution::new(np);
        // Synthetic cost: rank (cost) decays sharply off the diagonal and
        // vanishes past a cutoff, like a compressed RBF operator.
        let cost = |i: usize, j: usize| -> f64 {
            let d = i - j;
            if d == 0 || d > 10 {
                0.0 // band tiles handled elsewhere; nulls past the cutoff
            } else {
                50.0 * (-(d as f64) / 2.0).exp()
            }
        };
        let imbalance = |dist: &dyn TileDistribution| -> f64 {
            let mut load = vec![0.0_f64; np];
            for i in 0..nt {
                for j in 0..i {
                    load[dist.owner(i, j)] += cost(i, j);
                }
            }
            let max = load.iter().cloned().fold(0.0_f64, f64::max);
            let mean = load.iter().sum::<f64>() / np as f64;
            max / mean
        };
        let li_2d = imbalance(&twod);
        let li_diamond = imbalance(&diamond);
        assert!(
            li_diamond < li_2d,
            "diamond {li_diamond:.3} should beat rectangular {li_2d:.3}"
        );
    }

    #[test]
    fn diamond_column_group_stays_small() {
        // §VII-B: the column process group must stay as small as 2DBCDD's
        // (p processes) — it carries the expensive dense broadcast.
        let nt = 40;
        let d = DiamondDistribution { p: 4, q: 8 };
        for j in 0..8 {
            let mut owners: Vec<usize> = (j + 1..nt).map(|i| d.owner(i, j)).collect();
            owners.sort_unstable();
            owners.dedup();
            assert!(owners.len() <= 4, "column {j} spans {} procs", owners.len());
        }
    }

    #[test]
    fn single_proc_everything_local() {
        for dist in [
            &TwoDBlockCyclic::new(1) as &dyn TileDistribution,
            &LorapoHybrid::new(1),
            &BandDistribution::new(1),
            &DiamondDistribution::new(1),
        ] {
            for i in 0..8 {
                for j in 0..=i {
                    assert_eq!(dist.owner(i, j), 0);
                }
            }
        }
    }
}

//! Tile-size auto-tuning.
//!
//! §VIII-C: the tile size trades critical-path weight (large tiles)
//! against task count and runtime overhead (small tiles); the paper
//! tunes it "experimentally" around the `b = O(√N)` rule and calls
//! model-based auto-tuning future work. This module implements that
//! future work on top of the simulator: sweep candidate tile sizes
//! around the √N seed, simulate each (the DES costs milliseconds at
//! tuning scale), and return the minimizer.

use crate::simulate::{simulate_cholesky, SimConfig};
use tlr_compress::SyntheticRankModel;

/// One tuning sample.
#[derive(Debug, Clone, Copy)]
pub struct TuneSample {
    /// Tile size evaluated.
    pub tile_size: usize,
    /// Tile count implied by the matrix size.
    pub nt: usize,
    /// Simulated time-to-solution.
    pub seconds: f64,
    /// Tasks in the trimmed DAG.
    pub tasks: usize,
}

/// Tuning outcome: the winner plus the full sweep for reporting.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The minimizing tile size.
    pub best: TuneSample,
    /// All evaluated samples, in sweep order.
    pub sweep: Vec<TuneSample>,
}

/// Tune the tile size for a matrix of `n` unknowns with the given
/// application parameters, on the machine/plan in `cfg` (whose
/// `rank_cap`/`band_width`/plan/trimming are honored).
///
/// `multipliers` scales the `b = 1.41·√N` seed; pass `&[]` for the
/// default seven-point sweep.
pub fn tune_tile_size(
    n: f64,
    shape: f64,
    accuracy: f64,
    cfg: &SimConfig,
    multipliers: &[f64],
) -> TuneResult {
    let defaults = [0.35, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];
    let mults: &[f64] = if multipliers.is_empty() { &defaults } else { multipliers };
    let seed = 1.41 * n.sqrt();
    let mut sweep = Vec::with_capacity(mults.len());
    let n_int = (n.round() as usize).max(1);
    for &m in mults {
        // Clamp the seed into [min(32, n), n] and derive the tile count
        // by ceiling division, so the pair stays consistent at any `n`:
        // `b ≤ n`, `b·nt ≥ n` and `b·(nt−1) < n`. The old independent
        // `.max(32)` / `.max(4)` clamps could silently tune a matrix up
        // to 25× larger than requested (`b·nt = 128` for `n = 5`).
        let b = ((seed * m).round() as usize).clamp(32.min(n_int), n_int);
        let nt = n_int.div_ceil(b);
        let snap = SyntheticRankModel::from_application(nt, b, shape, accuracy).snapshot();
        let r = simulate_cholesky(&snap, cfg);
        sweep.push(TuneSample {
            tile_size: b,
            nt,
            seconds: r.factorization_seconds,
            tasks: r.dag_tasks,
        });
    }
    let best = *sweep
        .iter()
        .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
        .expect("non-empty sweep");
    TuneResult { best, sweep }
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::MachineModel;

    fn cfg() -> SimConfig {
        SimConfig::hicma_parsec(MachineModel::shaheen_ii(), 4)
    }

    #[test]
    fn returns_a_swept_candidate() {
        let r = tune_tile_size(5e4, 3.7e-4, 1e-4, &cfg(), &[]);
        assert_eq!(r.sweep.len(), 7);
        assert!(r
            .sweep
            .iter()
            .any(|s| s.tile_size == r.best.tile_size && s.seconds == r.best.seconds));
        // the winner is the minimum
        for s in &r.sweep {
            assert!(r.best.seconds <= s.seconds + 1e-15);
        }
    }

    #[test]
    fn extremes_lose_to_the_middle() {
        // The bell shape (§VIII-C): the smallest and largest candidates
        // should not win on a work-rich problem.
        let r = tune_tile_size(2e4, 3.7e-4, 1e-4, &cfg(), &[0.25, 0.5, 1.0, 2.0, 4.0]);
        let first = r.sweep.first().unwrap();
        let last = r.sweep.last().unwrap();
        assert!(r.best.seconds < first.seconds, "tiny tiles should lose");
        assert!(r.best.seconds <= last.seconds, "huge tiles should not win");
    }

    #[test]
    fn custom_multipliers_respected() {
        let r = tune_tile_size(1e5, 1e-3, 1e-4, &cfg(), &[1.0]);
        assert_eq!(r.sweep.len(), 1);
        let expected_b = (1.41 * (1e5f64).sqrt()).round() as usize;
        assert_eq!(r.best.tile_size, expected_b);
    }

    /// Satellite bugfix regression: `b` and `nt` must describe the
    /// matrix actually requested. The old independent clamps produced
    /// `b = 32, nt = 4` (a 128-unknown matrix) for `n = 5`, and `b > n`
    /// whenever `n < 32`.
    #[test]
    fn tiny_problems_stay_consistent() {
        for &n in &[5.0_f64, 20.0, 100.0, 1000.0] {
            let r = tune_tile_size(n, 3.7e-4, 1e-4, &cfg(), &[0.35, 1.0, 3.0]);
            let n_int = n as usize;
            for s in &r.sweep {
                assert!(s.tile_size <= n_int, "b {} > n {n_int}", s.tile_size);
                assert!(
                    s.tile_size * s.nt >= n_int,
                    "b·nt {} < n {n_int}",
                    s.tile_size * s.nt
                );
                assert!(
                    s.tile_size * (s.nt - 1) < n_int,
                    "a whole tile row past n: b {} nt {}",
                    s.tile_size,
                    s.nt
                );
            }
        }
    }

    /// At `n` smaller than the 32-column floor the whole matrix is one
    /// tile: `b = n`, `nt = 1`.
    #[test]
    fn sub_floor_n_collapses_to_one_tile() {
        let r = tune_tile_size(20.0, 3.7e-4, 1e-4, &cfg(), &[1.0]);
        assert_eq!(r.best.tile_size, 20);
        assert_eq!(r.best.nt, 1);
    }
}

//! Tile-size auto-tuning.
//!
//! §VIII-C: the tile size trades critical-path weight (large tiles)
//! against task count and runtime overhead (small tiles); the paper
//! tunes it "experimentally" around the `b = O(√N)` rule and calls
//! model-based auto-tuning future work. This module implements that
//! future work on top of the simulator: sweep candidate tile sizes
//! around the √N seed, simulate each (the DES costs milliseconds at
//! tuning scale), and return the minimizer.

use crate::simulate::{simulate_cholesky, SimConfig};
use tlr_compress::SyntheticRankModel;

/// One tuning sample.
#[derive(Debug, Clone, Copy)]
pub struct TuneSample {
    /// Tile size evaluated.
    pub tile_size: usize,
    /// Tile count implied by the matrix size.
    pub nt: usize,
    /// Simulated time-to-solution.
    pub seconds: f64,
    /// Tasks in the trimmed DAG.
    pub tasks: usize,
}

/// Tuning outcome: the winner plus the full sweep for reporting.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The minimizing tile size.
    pub best: TuneSample,
    /// All evaluated samples, in sweep order.
    pub sweep: Vec<TuneSample>,
}

/// Tune the tile size for a matrix of `n` unknowns with the given
/// application parameters, on the machine/plan in `cfg` (whose
/// `rank_cap`/`band_width`/plan/trimming are honored).
///
/// `multipliers` scales the `b = 1.41·√N` seed; pass `&[]` for the
/// default seven-point sweep.
pub fn tune_tile_size(
    n: f64,
    shape: f64,
    accuracy: f64,
    cfg: &SimConfig,
    multipliers: &[f64],
) -> TuneResult {
    let defaults = [0.35, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];
    let mults: &[f64] = if multipliers.is_empty() { &defaults } else { multipliers };
    let seed = 1.41 * n.sqrt();
    let mut sweep = Vec::with_capacity(mults.len());
    for &m in mults {
        let b = ((seed * m).round() as usize).max(32);
        let nt = ((n / b as f64).round() as usize).max(4);
        let snap = SyntheticRankModel::from_application(nt, b, shape, accuracy).snapshot();
        let r = simulate_cholesky(&snap, cfg);
        sweep.push(TuneSample {
            tile_size: b,
            nt,
            seconds: r.factorization_seconds,
            tasks: r.dag_tasks,
        });
    }
    let best = *sweep
        .iter()
        .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
        .expect("non-empty sweep");
    TuneResult { best, sweep }
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::MachineModel;

    fn cfg() -> SimConfig {
        SimConfig::hicma_parsec(MachineModel::shaheen_ii(), 4)
    }

    #[test]
    fn returns_a_swept_candidate() {
        let r = tune_tile_size(5e4, 3.7e-4, 1e-4, &cfg(), &[]);
        assert_eq!(r.sweep.len(), 7);
        assert!(r
            .sweep
            .iter()
            .any(|s| s.tile_size == r.best.tile_size && s.seconds == r.best.seconds));
        // the winner is the minimum
        for s in &r.sweep {
            assert!(r.best.seconds <= s.seconds + 1e-15);
        }
    }

    #[test]
    fn extremes_lose_to_the_middle() {
        // The bell shape (§VIII-C): the smallest and largest candidates
        // should not win on a work-rich problem.
        let r = tune_tile_size(2e4, 3.7e-4, 1e-4, &cfg(), &[0.25, 0.5, 1.0, 2.0, 4.0]);
        let first = r.sweep.first().unwrap();
        let last = r.sweep.last().unwrap();
        assert!(r.best.seconds < first.seconds, "tiny tiles should lose");
        assert!(r.best.seconds <= last.seconds, "huge tiles should not win");
    }

    #[test]
    fn custom_multipliers_respected() {
        let r = tune_tile_size(1e5, 1e-3, 1e-4, &cfg(), &[1.0]);
        assert_eq!(r.sweep.len(), 1);
        let expected_b = (1.41 * (1e5f64).sqrt()).round() as usize;
        assert_eq!(r.best.tile_size, expected_b);
    }
}

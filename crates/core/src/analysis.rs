//! Algorithm 1: matrix analysis for DAG trimming (§VI).
//!
//! The analysis walks the panels of the factorization symbolically, using
//! only the initial rank array produced by the compression step. For each
//! panel `k` it records which sub-diagonal tiles are non-null (the TRSMs
//! that must run, and the SYRKs they feed), then marks every off-diagonal
//! tile updated by a pair of surviving TRSMs as *fill-in* — after which
//! that tile participates in later panels even if it compressed to null.
//! The result is exactly the `analysis` structure of the paper's
//! Algorithm 1, which the DAG builder uses to trim the execution space of
//! the TRSM/SYRK/GEMM task classes.
//!
//! In addition to the paper's occupancy lists we evolve a *rank estimate*
//! per tile (`min(cap, max(r_mn, min(r_mk, r_nk)))` on each symbolic GEMM)
//! so the discrete-event simulator can price every kernel without running
//! the numerics.

use tlr_compress::RankSnapshot;

/// Output of the symbolic analysis — the paper's
/// `hicma_parsec_analysis_t`.
#[derive(Debug, Clone)]
pub struct MatrixAnalysis {
    nt: usize,
    /// `trsm[k]` = tile rows `m > k` whose tile `(m, k)` is non-null when
    /// panel `k` executes (paper: `analysis.trsm[k][..nb_trsm[k]]`).
    pub trsm: Vec<Vec<usize>>,
    /// `syrk[m]` = panels `k < m` contributing a SYRK update to diagonal
    /// tile `(m, m)`.
    pub syrk: Vec<Vec<usize>>,
    /// `gemm[(m, n)]` = panels `k < n` contributing a GEMM update to tile
    /// `(m, n)`; indexed `m·(m+1)/2 + n` over the lower triangle.
    gemm: Vec<Vec<usize>>,
    /// Evolved rank estimates (initial ranks + fill-in), the "final rank"
    /// structure of Fig. 1 right columns.
    pub final_ranks: RankSnapshot,
    /// Panel at which tile `(m, n)` first becomes non-null; `None` for
    /// tiles that are non-null from compression or stay null forever.
    fill_panel: Vec<Option<usize>>,
    /// Number of tiles that filled in during the factorization.
    pub fill_count: usize,
}

#[inline]
fn lower_index(m: usize, n: usize) -> usize {
    debug_assert!(m >= n);
    m * (m + 1) / 2 + n
}

impl MatrixAnalysis {
    /// Run Algorithm 1 on an initial rank snapshot.
    ///
    /// `rank_cap` bounds the fill-in rank estimate (HiCMA's `maxrank`);
    /// pass `tile_size` to disable the cap.
    ///
    /// ```
    /// use hicma_core::MatrixAnalysis;
    /// use tlr_compress::SyntheticRankModel;
    ///
    /// let snap = SyntheticRankModel::from_application(64, 512, 3.7e-4, 1e-4).snapshot();
    /// let analysis = MatrixAnalysis::analyze(&snap, 512);
    /// // Sparse operators keep only a fraction of the dense task space.
    /// assert!(analysis.surviving_tasks() < analysis.dense_tasks() / 2);
    /// // Fill-in can only add tiles, never remove them.
    /// assert!(analysis.final_density() >= snap.density());
    /// ```
    pub fn analyze(initial: &RankSnapshot, rank_cap: usize) -> Self {
        let nt = initial.nt();
        let b = initial.tile_size();
        let cap = rank_cap.min(b);
        // HiCMA's `maxrank` bounds the stored rank of every off-diagonal
        // tile, not just fill-in — clamp the initial snapshot accordingly.
        let mut ranks = initial.clone();
        for i in 0..nt {
            for j in 0..i {
                let r = ranks.rank(i, j);
                if r > cap {
                    ranks.set_rank(i, j, cap);
                }
            }
        }
        let mut trsm: Vec<Vec<usize>> = vec![Vec::new(); nt];
        let mut syrk: Vec<Vec<usize>> = vec![Vec::new(); nt];
        let mut gemm: Vec<Vec<usize>> = vec![Vec::new(); nt * (nt + 1) / 2];
        let mut fill_panel: Vec<Option<usize>> = vec![None; nt * (nt + 1) / 2];
        let mut fill_count = 0usize;

        // `trsm` is keyed by panel `k`, `syrk` by row `m` — an iterator
        // form would obscure the two distinct indexings.
        #[allow(clippy::needless_range_loop)]
        for k in 0..nt.saturating_sub(1) {
            // Panel survey: which TRSMs run, which SYRKs they feed.
            for m in k + 1..nt {
                if ranks.rank(m, k) > 0 {
                    trsm[k].push(m);
                    syrk[m].push(k);
                }
            }
            // Pairwise GEMM updates between surviving panel tiles;
            // `trsm[k]` is ascending, so `m > n` ⇔ later entry.
            for i in 1..trsm[k].len() {
                for j in 0..i {
                    let m = trsm[k][i];
                    let n = trsm[k][j];
                    let r_mk = ranks.rank(m, k);
                    let r_nk = ranks.rank(n, k);
                    let contribution = r_mk.min(r_nk).min(cap);
                    let existing = ranks.rank(m, n);
                    if existing == 0 {
                        // Fill-in (paper line 15: rank[n*NT+m] = 1).
                        fill_panel[lower_index(m, n)] = Some(k);
                        fill_count += 1;
                        ranks.set_rank(m, n, contribution.max(1));
                    } else {
                        ranks.set_rank(m, n, existing.max(contribution));
                    }
                    gemm[lower_index(m, n)].push(k);
                }
            }
        }

        Self { nt, trsm, syrk, gemm, final_ranks: ranks, fill_panel, fill_count }
    }

    /// Number of tile rows/columns.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Panels contributing GEMM updates to tile `(m, n)`.
    pub fn gemm_panels(&self, m: usize, n: usize) -> &[usize] {
        &self.gemm[lower_index(m, n)]
    }

    /// Is tile `(m, n)` non-null when panel `k` executes? (Initially
    /// non-null tiles always; fill-in tiles from their fill panel on.)
    pub fn nonnull_at(&self, m: usize, n: usize, k: usize) -> bool {
        if m == n {
            return true; // diagonal tiles are always dense
        }
        let idx = lower_index(m, n);
        match self.fill_panel[idx] {
            Some(fp) => k >= fp,
            None => self.final_ranks.rank(m, n) > 0,
        }
    }

    /// Total task count that survives trimming (POTRF + TRSM + SYRK + GEMM).
    pub fn surviving_tasks(&self) -> usize {
        let potrf = self.nt;
        let trsm: usize = self.trsm.iter().map(Vec::len).sum();
        let syrk: usize = self.syrk.iter().map(Vec::len).sum();
        let gemm: usize = self.gemm.iter().map(Vec::len).sum();
        potrf + trsm + syrk + gemm
    }

    /// Task count of the untrimmed (dense) DAG for the same NT.
    pub fn dense_tasks(&self) -> usize {
        let nt = self.nt;
        // POTRF: NT; TRSM & SYRK: NT(NT−1)/2 each; GEMM: NT(NT−1)(NT−2)/6.
        // Saturating: a one-tile matrix (NT = 1, possible for n below the
        // tuner's tile-size floor) is a single POTRF, not an underflow.
        nt + nt * (nt.saturating_sub(1))
            + nt * (nt.saturating_sub(1)) * (nt.saturating_sub(2)) / 6
    }

    /// Approximate memory footprint of the analysis structure in bytes —
    /// the overhead plotted in Fig. 6 (right).
    pub fn memory_bytes(&self) -> usize {
        let usize_sz = std::mem::size_of::<usize>();
        let vecs = self.trsm.iter().map(|v| v.capacity()).sum::<usize>()
            + self.syrk.iter().map(|v| v.capacity()).sum::<usize>()
            + self.gemm.iter().map(|v| v.capacity()).sum::<usize>();
        let headers = (self.trsm.len() + self.syrk.len() + self.gemm.len()) * 3 * usize_sz;
        let fills = self.fill_panel.len() * std::mem::size_of::<Option<usize>>();
        vecs * usize_sz + headers + fills + self.nt * self.nt * usize_sz
    }

    /// Final matrix density (after factorization) — the number plotted
    /// against initial density in Fig. 4.
    pub fn final_density(&self) -> f64 {
        self.final_ranks.density()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Snapshot helper: `spec[(m, n)] = rank`.
    fn snap(nt: usize, b: usize, entries: &[(usize, usize, usize)]) -> RankSnapshot {
        let mut ranks = vec![0usize; nt * nt];
        for i in 0..nt {
            ranks[i * nt + i] = b;
        }
        for &(m, n, r) in entries {
            ranks[m * nt + n] = r;
        }
        RankSnapshot::new(nt, b, ranks)
    }

    #[test]
    fn dense_matrix_keeps_every_task() {
        // all off-diagonal tiles rank 5 ⇒ nothing is trimmed
        let nt = 5;
        let entries: Vec<_> =
            (0..nt).flat_map(|m| (0..m).map(move |n| (m, n, 5usize))).collect();
        let s = snap(nt, 16, &entries);
        let a = MatrixAnalysis::analyze(&s, 16);
        assert_eq!(a.surviving_tasks(), a.dense_tasks());
        assert_eq!(a.fill_count, 0);
    }

    #[test]
    fn empty_offdiagonal_trims_everything() {
        let s = snap(4, 16, &[]);
        let a = MatrixAnalysis::analyze(&s, 16);
        // only the POTRFs remain
        assert_eq!(a.surviving_tasks(), 4);
        assert_eq!(a.fill_count, 0);
        assert_eq!(a.final_density(), 0.0);
    }

    #[test]
    fn fill_in_detected() {
        // (1,0) and (2,0) non-null, (2,1) null ⇒ GEMM(k=0) fills (2,1).
        let s = snap(3, 16, &[(1, 0, 4), (2, 0, 6)]);
        let a = MatrixAnalysis::analyze(&s, 16);
        assert_eq!(a.fill_count, 1);
        assert!(a.final_ranks.rank(2, 1) > 0);
        assert_eq!(a.gemm_panels(2, 1), &[0]);
        // fill-in rank estimate = min(4, 6) = 4
        assert_eq!(a.final_ranks.rank(2, 1), 4);
        // (2,1) is null for panel "before 0"… becomes non-null at k ≥ 0
        assert!(a.nonnull_at(2, 1, 0));
        // After fill, panel 1's TRSM list includes row 2.
        assert_eq!(a.trsm[1], vec![2]);
        assert_eq!(a.syrk[2], vec![0, 1]);
    }

    #[test]
    fn null_chain_stays_trimmed() {
        // Only (1,0) non-null: no pairs, no fill, panel 1 TRSM list empty.
        let s = snap(3, 16, &[(1, 0, 4)]);
        let a = MatrixAnalysis::analyze(&s, 16);
        assert_eq!(a.fill_count, 0);
        assert!(a.trsm[1].is_empty());
        assert_eq!(a.trsm[0], vec![1]);
        // SYRK on diagonal 1 from panel 0 only.
        assert_eq!(a.syrk[1], vec![0]);
        assert!(!a.nonnull_at(2, 1, 1));
    }

    #[test]
    fn rank_cap_bounds_fill_estimates() {
        let s = snap(3, 64, &[(1, 0, 40), (2, 0, 50)]);
        let a = MatrixAnalysis::analyze(&s, 8);
        assert_eq!(a.final_ranks.rank(2, 1), 8);
    }

    #[test]
    fn counts_on_known_pattern() {
        // Arrowhead: column 0 fully dense, everything else null.
        // Fill-in: all pairs (m, n) with m > n ≥ 1 fill at panel 0, and the
        // matrix finishes fully dense — the classic sparse-direct arrow.
        let nt = 6;
        let entries: Vec<_> = (1..nt).map(|m| (m, 0usize, 3usize)).collect();
        let s = snap(nt, 16, &entries);
        let a = MatrixAnalysis::analyze(&s, 16);
        let expected_fill = (nt - 1) * (nt - 2) / 2;
        assert_eq!(a.fill_count, expected_fill);
        assert!((a.final_density() - 1.0).abs() < 1e-12);
        // panel 0 has nt−1 TRSMs
        assert_eq!(a.trsm[0].len(), nt - 1);
    }

    #[test]
    fn surviving_monotone_in_density() {
        let nt = 8;
        let sparse_entries: Vec<_> = (1..nt).map(|m| (m, m - 1, 4usize)).collect();
        let dense_entries: Vec<_> =
            (0..nt).flat_map(|m| (0..m).map(move |n| (m, n, 4usize))).collect();
        let a_sparse = MatrixAnalysis::analyze(&snap(nt, 16, &sparse_entries), 16);
        let a_dense = MatrixAnalysis::analyze(&snap(nt, 16, &dense_entries), 16);
        assert!(a_sparse.surviving_tasks() < a_dense.surviving_tasks());
        assert_eq!(a_dense.surviving_tasks(), a_dense.dense_tasks());
    }

    #[test]
    fn memory_reported() {
        let s = snap(10, 16, &[(5, 2, 3)]);
        let a = MatrixAnalysis::analyze(&s, 16);
        assert!(a.memory_bytes() > 0);
    }
}

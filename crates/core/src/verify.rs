//! Numerical validation helpers.
//!
//! These back the accuracy claims: a TLR factorization at threshold ε must
//! reproduce the operator to `O(ε · NT)` in the Frobenius norm, and the
//! solve phase must deliver the displacement accuracy the application
//! (§IV-C) asked for. Only used at validation scale (dense
//! materialization is `O(N²)`).

use tlr_compress::TlrMatrix;
use tlr_linalg::{frobenius_norm, gemm, Matrix, Trans};

/// Relative factorization residual `‖A − L·Lᵀ‖_F / ‖A‖_F`, with `A` the
/// original dense operator and `l` the TLR-factored matrix.
pub fn factorization_residual(a: &Matrix, l: &TlrMatrix) -> f64 {
    let ld = l.to_dense_lower();
    let mut recon = Matrix::zeros(a.rows(), a.cols());
    gemm(Trans::No, Trans::Yes, 1.0, &ld, &ld, 0.0, &mut recon);
    recon.axpy(-1.0, a);
    frobenius_norm(&recon) / frobenius_norm(a).max(f64::MIN_POSITIVE)
}

/// Estimate the 2-norm condition number `κ₂(A) = λ_max / λ_min` of an SPD
/// operator from its TLR factorization: power iteration on `A` (via the
/// symmetric TLR matvec) for `λ_max`, and inverse power iteration through
/// the factored solve for `λ_min`.
///
/// `a` is the *unfactored* TLR operator, `l` its factorization. `iters`
/// power-iteration steps (20–40 is plenty for the well-separated spectra
/// of kernel matrices).
pub fn estimate_condition(
    a: &tlr_compress::TlrMatrix,
    l: &tlr_compress::TlrMatrix,
    iters: usize,
) -> f64 {
    let n = a.n();
    assert_eq!(l.n(), n);
    let normalize = |v: &mut [f64]| -> f64 {
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in v.iter_mut() {
                *x /= norm;
            }
        }
        norm
    };
    // deterministic pseudo-random start vector
    let mut v: Vec<f64> = (0..n).map(|i| ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0).collect();
    normalize(&mut v);
    let mut lambda_max = 0.0;
    for _ in 0..iters {
        let mut w = crate::solve::tlr_matvec(a, &v);
        lambda_max = normalize(&mut w);
        v = w;
    }
    let mut u: Vec<f64> = (0..n).map(|i| ((i * 40503) % 997) as f64 / 498.5 - 1.0).collect();
    normalize(&mut u);
    let mut inv_lambda_min = 0.0;
    for _ in 0..iters {
        let mut w = u.clone();
        crate::solve::solve_tlr(l, &mut w);
        inv_lambda_min = normalize(&mut w);
        u = w;
    }
    lambda_max * inv_lambda_min
}

/// Relative solve residual `‖A·x − b‖₂ / ‖b‖₂`.
pub fn solve_residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.matvec(x);
    let mut num = 0.0;
    let mut den = 0.0;
    for (axi, bi) in ax.iter().zip(b) {
        num += (axi - bi) * (axi - bi);
        den += bi * bi;
    }
    (num / den.max(f64::MIN_POSITIVE)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorize::{factorize, FactorConfig};
    use crate::solve::solve_tlr;
    use tlr_compress::{CompressionConfig, TlrMatrix};

    fn gaussian_dense(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64) / (n as f64 / 8.0);
            let v = (-d * d).exp();
            if i == j {
                v + 1e-3
            } else {
                v
            }
        })
    }

    #[test]
    fn residual_scales_with_accuracy() {
        let n = 96;
        let dense = gaussian_dense(n);
        let mut residuals = Vec::new();
        for acc in [1e-3, 1e-6, 1e-9] {
            let mut m = TlrMatrix::from_dense(&dense, 24, &CompressionConfig::with_accuracy(acc));
            factorize(&mut m, &FactorConfig::with_accuracy(acc)).unwrap();
            residuals.push(factorization_residual(&dense, &m));
        }
        assert!(residuals[0] > residuals[1] && residuals[1] > residuals[2],
            "residuals must shrink with accuracy: {residuals:?}");
        assert!(residuals[2] < 1e-8);
    }

    #[test]
    fn condition_estimate_matches_known_spectrum() {
        // Diagonal-ish SPD with known extreme eigenvalues: λ ∈ [0.5, 4.5].
        let n = 96;
        let dense = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                0.5 + 4.0 * (i as f64 / (n - 1) as f64)
            } else {
                0.0
            }
        });
        let acc = 1e-10;
        let a = TlrMatrix::from_dense(&dense, 24, &CompressionConfig::with_accuracy(acc));
        let mut l = TlrMatrix::from_dense(&dense, 24, &CompressionConfig::with_accuracy(acc));
        factorize(&mut l, &FactorConfig::with_accuracy(acc)).unwrap();
        let kappa = crate::verify::estimate_condition(&a, &l, 60);
        let expected = 4.5 / 0.5;
        assert!(
            (kappa / expected - 1.0).abs() < 0.05,
            "κ estimate {kappa} vs exact {expected}"
        );
    }

    #[test]
    fn condition_grows_with_kernel_smoothness() {
        // Longer correlation ⇒ faster spectral decay ⇒ worse conditioning.
        let n = 96;
        let kappa_of = |corr: f64| -> f64 {
            let dense = Matrix::from_fn(n, n, |i, j| {
                let d = (i as f64 - j as f64) / corr;
                (-d * d).exp() + if i == j { 1e-4 } else { 0.0 }
            });
            let acc = 1e-10;
            let a = TlrMatrix::from_dense(&dense, 24, &CompressionConfig::with_accuracy(acc));
            let mut l = TlrMatrix::from_dense(&dense, 24, &CompressionConfig::with_accuracy(acc));
            factorize(&mut l, &FactorConfig::with_accuracy(acc)).unwrap();
            crate::verify::estimate_condition(&a, &l, 40)
        };
        let kappa_sharp = kappa_of(2.0);
        let kappa_smooth = kappa_of(8.0);
        assert!(
            kappa_smooth > kappa_sharp,
            "smoother kernel must be worse conditioned: {kappa_smooth} vs {kappa_sharp}"
        );
    }

    #[test]
    fn solve_residual_near_zero_for_exact() {
        let n = 80;
        let dense = gaussian_dense(n);
        let acc = 1e-10;
        let mut m = TlrMatrix::from_dense(&dense, 20, &CompressionConfig::with_accuracy(acc));
        factorize(&mut m, &FactorConfig::with_accuracy(acc)).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut x = b.clone();
        solve_tlr(&m, &mut x);
        assert!(solve_residual(&dense, &x, &b) < 1e-7);
    }
}

//! Panel batching: fuse same-class trailing-panel updates into one task.
//!
//! H2OPUS-TLR gets much of its throughput from launching many small
//! same-shape TLR kernels as one batched operation; the runtime-side
//! equivalent here is a DAG pass that fuses every `GEMM(k, ·, n)` of one
//! panel step `k` updating trailing column `n` into a single engine task.
//! The members share their `(n, k)` operand (so a fused execution touches
//! the packed panel once per group instead of once per tile) and, more
//! importantly on small tiles, the per-task scheduling overhead — deque
//! traffic, dependency countdowns, lock acquisitions — is paid once per
//! group instead of once per GEMM.
//!
//! # Why fusing `GEMM(k, ·, n)` is always legal
//!
//! Two members `GEMM(k, m₁, n)` and `GEMM(k, m₂, n)` write distinct tiles
//! `(m₁, n)` and `(m₂, n)` and read only panel-`k` TRSM outputs, so no
//! dataflow path connects them: every successor of a panel-`k` GEMM is a
//! strictly later writer of its output tile (a `k' > k` task). Contracting
//! the group therefore cannot create a cycle, and because each tile's
//! update sequence is untouched — same kernels, same operand versions,
//! same order per tile — the fused factorization is **bit-identical** to
//! the unfused one (`tests/panel_batching.rs` holds both engines and
//! every [`SchedPolicy`](runtime::scheduler::SchedPolicy) to that).
//!
//! # Cost model and observability
//!
//! A fused task carries the *sum* of its members' flops, so DES pricing,
//! `CostModel` lookahead and the scheduler's per-class EMA feedback (all
//! linear in flops) see the aggregate-equivalent work. Per-kernel
//! attribution is preserved by the [`BatchObs`] span-splitting shim: the
//! engine's `on_enqueue`/`on_retire` hooks fire against *batched* ids, the
//! shim fans enqueue out to the member ids and suppresses the fused
//! retire, and the executing closure records one measured span per member
//! via [`ExecObs::record_span`] — so `RunMetrics`, the trace, and the
//! critical-path pricing still operate on the original task granularity.

use crate::dag::{CholeskyDag, TaskKind};
use runtime::engine::{ExecObs, Observe};
use runtime::graph::{DataRef, TaskGraph, TaskId, TaskSpec};
use std::collections::{HashMap, HashSet};

/// Smallest member count worth fusing. A "group" of one is left as an
/// ordinary task — fusing it would only rename it.
pub const MIN_GROUP: usize = 2;

/// Result of the panel-batching pass: a contracted graph plus the two
/// mappings the executor needs to translate between granularities.
pub struct PanelBatch {
    /// The contracted task graph the engine executes. Edges between the
    /// same pair of batched tasks carrying the same datum are deduplicated
    /// (a fused panel receives its shared `(n, k)` operand once, not once
    /// per member).
    pub graph: TaskGraph,
    /// `members[b]` lists the original task ids fused into batched task
    /// `b`, in original (per-tile program) order. Singletons for every
    /// non-fused task.
    pub members: Vec<Vec<TaskId>>,
    /// `of[t]` is the batched task executing original task `t`.
    pub of: Vec<TaskId>,
    /// Number of batched tasks with more than one member.
    pub fused_groups: usize,
}

impl PanelBatch {
    /// Per-batched-task execution ranks, projected from the original
    /// assignment (all members of a group share their rank by
    /// construction — the pass keys groups on it).
    pub fn exec_ranks(&self, exec_rank: &[usize]) -> Vec<usize> {
        self.members.iter().map(|m| exec_rank[m[0]]).collect()
    }
}

/// Fuse all `GEMM(k, ·, n)` tasks of each `(k, n)` trailing-panel column
/// into single batched tasks; every other task stays a singleton.
///
/// On distributed runs, pass the per-task `exec_rank` so groups split at
/// rank boundaries — members of one fused task must execute on one rank.
pub fn batch_panel_gemms(dag: &CholeskyDag, exec_rank: Option<&[usize]>) -> PanelBatch {
    let g = &dag.graph;
    let ntasks = g.len();
    let key_of = |t: TaskId| match dag.kinds[t] {
        TaskKind::Gemm { k, n, .. } => Some((k, n, exec_rank.map_or(0, |er| er[t]))),
        _ => None,
    };

    let mut by_key: HashMap<(usize, usize, usize), Vec<TaskId>> = HashMap::new();
    for t in 0..ntasks {
        if let Some(key) = key_of(t) {
            by_key.entry(key).or_default().push(t);
        }
    }

    // Emit batched tasks in order of their first member, so the contracted
    // graph (and everything keyed on its ids: schedulers, comm counting,
    // traces) is deterministic.
    let mut graph = TaskGraph::new();
    let mut members: Vec<Vec<TaskId>> = Vec::new();
    let mut of: Vec<TaskId> = vec![usize::MAX; ntasks];
    let mut fused_groups = 0usize;
    for t in 0..ntasks {
        if of[t] != usize::MAX {
            continue; // already emitted as a later member of its group
        }
        let group: Vec<TaskId> = match key_of(t) {
            Some(key) if by_key[&key].len() >= MIN_GROUP => by_key[&key].clone(),
            _ => vec![t],
        };
        let spec0 = g.spec(group[0]);
        let id = graph.add_task(TaskSpec {
            class: spec0.class,
            priority: spec0.priority,
            // The engine treats `writes` as "the datum this task's return
            // value is"; members put their own tiles into the rank store,
            // and the distributed engine ships non-`writes` edge payloads
            // from there.
            writes: spec0.writes,
            flops: group.iter().map(|&m| g.spec(m).flops).sum(),
        });
        if group.len() > 1 {
            fused_groups += 1;
        }
        for &m in &group {
            of[m] = id;
        }
        members.push(group);
    }

    // Project the edges through the contraction. Intra-group edges cannot
    // exist (members are mutually independent) but are skipped defensively;
    // parallel edges carrying the same datum collapse to one.
    let mut seen: HashSet<(TaskId, TaskId, DataRef)> = HashSet::new();
    for s in 0..ntasks {
        for e in g.successors(s) {
            let (bs, bd) = (of[s], of[e.dst]);
            if bs != bd && seen.insert((bs, bd, e.data)) {
                graph.add_edge(bs, bd, e.data, e.bytes);
            }
        }
    }

    PanelBatch { graph, members, of, fused_groups }
}

/// Span-splitting [`Observe`] shim for batched execution.
///
/// The engine sees the contracted graph, so its hooks fire with *batched*
/// task ids against an [`ExecObs`] sized for the *original* graph. This
/// wrapper keeps the two granularities consistent:
///
/// * `on_enqueue(b)` fans out to every member — each original task became
///   ready exactly when its group did;
/// * `on_retire(b)` is suppressed — the executing closure records one
///   measured span per member through [`ExecObs::record_span`] instead,
///   so the trace, `RunMetrics` and critical-path pricing keep per-kernel
///   resolution;
/// * steals and the clock pass through unchanged.
pub struct BatchObs<'a> {
    inner: Option<&'a ExecObs>,
    members: &'a [Vec<TaskId>],
}

impl<'a> BatchObs<'a> {
    /// Wrap an (optional) original-granularity recorder for a batched run.
    pub fn new(inner: Option<&'a ExecObs>, members: &'a [Vec<TaskId>]) -> Self {
        BatchObs { inner, members }
    }
}

impl Observe for BatchObs<'_> {
    #[inline]
    fn now_ns(&self) -> u64 {
        match self.inner {
            Some(o) => o.now_ns(),
            None => 0,
        }
    }
    #[inline]
    fn on_enqueue(&self, b: TaskId) {
        if let Some(o) = self.inner {
            for &t in &self.members[b] {
                o.on_enqueue(t);
            }
        }
    }
    #[inline]
    fn on_retire(&self, _wid: usize, _b: TaskId, _start_ns: u64) {}
    #[inline]
    fn on_steal(&self, wid: usize) {
        if let Some(o) = self.inner {
            o.on_steal(wid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{build_cholesky_dag, DagConfig};
    use runtime::graph::TaskClass;
    use tlr_compress::RankSnapshot;

    fn dense_snap(nt: usize, b: usize, r: usize) -> RankSnapshot {
        let mut ranks = vec![0usize; nt * nt];
        for i in 0..nt {
            for j in 0..nt {
                ranks[i * nt + j] = if i == j { b } else { r };
            }
        }
        RankSnapshot::new(nt, b, ranks)
    }

    fn dag(nt: usize) -> CholeskyDag {
        build_cholesky_dag(&dense_snap(nt, 32, 4), &DagConfig::default())
    }

    #[test]
    fn members_partition_the_original_tasks() {
        let d = dag(6);
        let pb = batch_panel_gemms(&d, None);
        let mut seen = vec![false; d.graph.len()];
        for (b, group) in pb.members.iter().enumerate() {
            for &t in group {
                assert!(!seen[t], "task {t} appears in two groups");
                seen[t] = true;
                assert_eq!(pb.of[t], b);
            }
        }
        assert!(seen.iter().all(|&s| s), "every task must be covered");
        assert!(pb.graph.len() < d.graph.len(), "fusion must shrink the graph");
        assert!(pb.fused_groups > 0);
    }

    #[test]
    fn only_same_panel_same_column_gemms_fuse() {
        let d = dag(7);
        let pb = batch_panel_gemms(&d, None);
        for group in &pb.members {
            if group.len() == 1 {
                continue;
            }
            let TaskKind::Gemm { k, n, .. } = d.kinds[group[0]] else {
                panic!("only GEMMs may fuse");
            };
            for &t in group {
                match d.kinds[t] {
                    TaskKind::Gemm { k: gk, n: gn, .. } => {
                        assert_eq!((gk, gn), (k, n), "mixed panel/column in one group");
                    }
                    other => panic!("non-GEMM {other:?} fused"),
                }
            }
        }
    }

    #[test]
    fn batched_graph_is_acyclic_and_flop_preserving() {
        let d = dag(8);
        let pb = batch_panel_gemms(&d, None);
        assert!(pb.graph.topological_order().is_some(), "contraction made a cycle");
        // The DES / cost-model invariant: a batched task's modeled flops
        // equal the sum of its members', and the totals match exactly.
        for (b, group) in pb.members.iter().enumerate() {
            let sum: f64 = group.iter().map(|&t| d.graph.spec(t).flops).sum();
            assert_eq!(pb.graph.spec(b).flops, sum);
            assert_eq!(pb.graph.spec(b).class, d.graph.spec(group[0]).class);
            assert_eq!(pb.graph.spec(b).priority, d.graph.spec(group[0]).priority);
        }
        assert!((pb.graph.total_flops() - d.graph.total_flops()).abs() < 1e-6);
    }

    #[test]
    fn shared_operand_edges_are_deduplicated() {
        let d = dag(8);
        let pb = batch_panel_gemms(&d, None);
        // Fewer edges than the original graph: each fused panel receives
        // its shared (n, k) TRSM operand once.
        assert!(pb.graph.num_edges() < d.graph.num_edges());
        for s in 0..pb.graph.len() {
            let mut seen = HashSet::new();
            for e in pb.graph.successors(s) {
                assert!(seen.insert((e.dst, e.data)), "duplicate edge survived the pass");
            }
        }
    }

    #[test]
    fn rank_splits_gate_fusion() {
        let d = dag(8);
        // Alternate ranks per task: same-(k,n) GEMMs land on a mix of
        // ranks, so groups must split accordingly.
        let er: Vec<usize> = (0..d.graph.len()).map(|t| t % 2).collect();
        let pb = batch_panel_gemms(&d, Some(&er));
        for group in &pb.members {
            let r0 = er[group[0]];
            assert!(group.iter().all(|&t| er[t] == r0), "group spans ranks");
        }
        let ranks = pb.exec_ranks(&er);
        assert_eq!(ranks.len(), pb.graph.len());
    }

    #[test]
    fn non_gemm_tasks_stay_singletons() {
        let d = dag(6);
        let pb = batch_panel_gemms(&d, None);
        for group in &pb.members {
            if d.graph.spec(group[0]).class != TaskClass::Gemm {
                assert_eq!(group.len(), 1);
            }
        }
    }
}

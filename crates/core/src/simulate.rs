//! Distributed execution on the simulated machine (the paper's runs).
//!
//! Drives the discrete-event simulator with a Cholesky DAG priced by a
//! [`MachineModel`]: kernel flops at the dense or low-rank sustained rate,
//! plus the runtime's per-task overhead; edges priced by the network
//! model. The execution mapping follows one of the paper's distribution
//! plans (Fig. 3), including the §VII-B remapping where off-band tiles
//! *execute* on the diamond grid while the data stays with its owner —
//! PaRSEC ships the tile in and the result back, at most twice per tile,
//! which we account as write-back bytes.

use crate::dag::{build_cholesky_dag, CholeskyDag, DagConfig};
use runtime::des::{simulate_with_scheduler_faults, CommStats, DesConfig, DesTask, FaultSchedule};
use runtime::graph::DataRef;
use runtime::machine::MachineModel;
use runtime::scheduler::{
    queue_keys, upward_rank_comm_keys, CommCosts, CostModel, LookaheadScheduler, RankProfile,
    SchedPolicy, Scheduler, StaticScheduler,
};
use runtime::trace::ClassBreakdown;
use tlr_compress::{RankEvolution, RankSnapshot};
use distribution::{
    BandDistribution, DiamondDistribution, LorapoHybrid, TileDistribution, TwoDBlockCyclic,
};

/// Which of the paper's distribution schemes to run (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistributionPlan {
    /// ScaLAPACK 2D block-cyclic, owner-computes (Fig. 3a).
    TwoD,
    /// Lorapo hybrid 1D + 2D, owner-computes (Fig. 3b) — the baseline.
    Lorapo,
    /// Band distribution: critical-path TRSM co-located with POTRF
    /// (Fig. 3c, §VII-A), owner-computes elsewhere.
    Band,
    /// Band distribution **plus** diamond-shaped execution remapping of
    /// off-band tasks (Fig. 3d, §VII-B) — full HiCMA-PaRSEC.
    BandDiamond,
}

impl DistributionPlan {
    /// Short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            DistributionPlan::TwoD => "2DBCDD",
            DistributionPlan::Lorapo => "lorapo-hybrid",
            DistributionPlan::Band => "band",
            DistributionPlan::BandDiamond => "band+diamond",
        }
    }
}

/// Full configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster model.
    pub machine: MachineModel,
    /// Number of nodes (one process per node).
    pub nodes: usize,
    /// Distribution scheme.
    pub plan: DistributionPlan,
    /// Algorithm-1 DAG trimming on/off.
    pub trimmed: bool,
    /// Fill-rank cap for the symbolic analysis.
    pub rank_cap: usize,
    /// Band width for the band-based plans (2 = diagonal + sub-diagonal).
    pub band_width: usize,
    /// Ready-queue scheduling policy of the simulated runtime.
    /// [`SchedPolicy::CommAwareUpwardRank`] prices cross-node edges with
    /// this machine's latency/bandwidth;
    /// [`SchedPolicy::RankAwareLookahead`] prices kernels from the
    /// snapshot's rank distribution via [`CostModel`] and keeps
    /// correcting those estimates from simulated durations mid-run.
    pub sched: SchedPolicy,
}

impl SimConfig {
    /// HiCMA-PaRSEC with everything on (band + diamond + trimming).
    pub fn hicma_parsec(machine: MachineModel, nodes: usize) -> Self {
        Self {
            machine,
            nodes,
            plan: DistributionPlan::BandDiamond,
            trimmed: true,
            rank_cap: usize::MAX,
            band_width: 2,
            sched: SchedPolicy::PanelPriority,
        }
    }
}

/// Results of one simulated factorization.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Simulated time-to-solution of the factorization (seconds).
    pub factorization_seconds: f64,
    /// Wall-clock cost of the symbolic analysis + DAG construction on
    /// this machine (Fig. 6 right, "overhead of Algorithm 1").
    pub analysis_seconds: f64,
    /// Memory footprint of the analysis structure (bytes).
    pub analysis_bytes: usize,
    /// Tasks simulated.
    pub dag_tasks: usize,
    /// Dense-DAG task count for the same NT (what trimming removed from).
    pub dense_dag_tasks: usize,
    /// Compute-only critical-path bound (§VIII-G roofline), seconds.
    pub critical_path_seconds: f64,
    /// Cross-process communication totals.
    pub comm: CommStats,
    /// Extra bytes from diamond remapping (ship-in + write-back).
    pub writeback_bytes: u64,
    /// `max busy / mean busy` over processes.
    pub load_imbalance: f64,
    /// Simulated busy seconds per kernel class.
    pub breakdown: ClassBreakdown,
    /// Modeled matrix-generation phase (embarrassingly parallel), seconds.
    pub generation_seconds: f64,
    /// Modeled compression phase, seconds (Fig. 11's dominant bar).
    pub compression_seconds: f64,
    /// Full virtual-clock execution trace (Gantt rendering, breakdowns).
    pub trace: runtime::trace::Trace,
    /// Fail-stop crashes that fired during the run (0 without a schedule).
    pub crashes: usize,
    /// Tasks migrated off dead nodes.
    pub migrated_tasks: usize,
    /// Tasks re-executed to regenerate outputs lost in a crash.
    pub reexecuted_tasks: usize,
    /// Silent store corruptions that struck during the run (0 without a
    /// schedule); each is priced as lineage healing by the DES.
    pub corruptions: usize,
}

impl SimReport {
    /// Roofline efficiency: critical path / achieved (§VIII-G).
    pub fn roofline_efficiency(&self) -> f64 {
        if self.factorization_seconds > 0.0 {
            self.critical_path_seconds / self.factorization_seconds
        } else {
            1.0
        }
    }
}

/// A paper-scale experiment mapped onto a feasible simulation size.
///
/// Scaling rule: divide the matrix size `N` and the node count by `S`
/// and the tile size by `√S`. This keeps both dimensionless balances of
/// the execution intact — critical-path work vs off-band work per node,
/// and tiles per process — so who-wins and where the scaling crossovers
/// fall are preserved, while DAGs stay within memory (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy)]
pub struct ScaledProblem {
    /// Number of tile rows in the simulated matrix.
    pub nt: usize,
    /// Simulated tile size.
    pub tile_size: usize,
    /// Simulated node count.
    pub nodes: usize,
    /// The downscale factor applied.
    pub scale: usize,
}

/// Map a paper experiment `(N, b, nodes)` to simulation scale by `S`.
pub fn scaled_problem(n_paper: f64, b_paper: usize, nodes_paper: usize, s: usize) -> ScaledProblem {
    assert!(s >= 1);
    let sf = s as f64;
    let tile_size = ((b_paper as f64) / sf.sqrt()).round().max(32.0) as usize;
    let n = n_paper / sf;
    let nt = (n / tile_size as f64).round().max(4.0) as usize;
    let nodes = (nodes_paper / s).max(1);
    ScaledProblem { nt, tile_size, nodes, scale: s }
}

/// Kernel-only duration in seconds under the machine model (the per-task
/// management overhead is charged by the DES's serial runtime thread).
/// Critical-path kernels run nested (node-parallel); everything else runs
/// on one core at the rank-dependent sustained rate.
fn task_duration(dag: &CholeskyDag, t: usize, machine: &MachineModel) -> f64 {
    let fl = dag.flops[t];
    if fl == 0.0 {
        0.0
    } else if dag.nested[t] {
        machine.nested_time(fl)
    } else {
        machine.core_time(fl, dag.rank_param[t])
    }
}

/// Simulate a TLR Cholesky factorization from an initial rank snapshot.
///
/// ```
/// use hicma_core::simulate::{simulate_cholesky, SimConfig};
/// use runtime::MachineModel;
/// use tlr_compress::SyntheticRankModel;
///
/// let snap = SyntheticRankModel::from_application(48, 512, 3.7e-4, 1e-4).snapshot();
/// let cfg = SimConfig::hicma_parsec(MachineModel::shaheen_ii(), 4);
/// let report = simulate_cholesky(&snap, &cfg);
/// // The makespan can never beat the compute-only critical path.
/// assert!(report.factorization_seconds >= report.critical_path_seconds);
/// ```
pub fn simulate_cholesky(initial: &RankSnapshot, cfg: &SimConfig) -> SimReport {
    simulate_cholesky_faulty(initial, cfg, &FaultSchedule::none())
        .expect("fault-free simulation cannot fail")
}

/// [`simulate_cholesky`] under a fault schedule (fail-stop crashes and
/// silent store corruptions), pricing the recovery/healing protocol on
/// the modeled machine — the overhead side of the resilience story whose
/// correctness side is [`crate::session::Session::with_fault_layer`].
///
/// # Errors
///
/// Returns [`runtime::EngineError`] when the schedule is malformed
/// (targets a nonexistent node) or crashes every node before completion.
pub fn simulate_cholesky_faulty(
    initial: &RankSnapshot,
    cfg: &SimConfig,
    faults: &FaultSchedule,
) -> Result<SimReport, runtime::EngineError> {
    let t0 = std::time::Instant::now();
    let dag = build_cholesky_dag(
        initial,
        &DagConfig { trimmed: cfg.trimmed, rank_cap: cfg.rank_cap },
    );
    let analysis_seconds = t0.elapsed().as_secs_f64();

    // ------------------------------------------------------------------
    // Execution mapping.
    // ------------------------------------------------------------------
    let nodes = cfg.nodes;
    let twod = TwoDBlockCyclic::new(nodes);
    let lorapo = LorapoHybrid::new(nodes);
    let band = BandDistribution { band_width: cfg.band_width, ..BandDistribution::new(nodes) };
    let diamond = DiamondDistribution::new(nodes);

    let owner = |d: DataRef| -> usize {
        match cfg.plan {
            DistributionPlan::TwoD => twod.owner(d.i, d.j),
            DistributionPlan::Lorapo => lorapo.owner(d.i, d.j),
            DistributionPlan::Band | DistributionPlan::BandDiamond => band.owner(d.i, d.j),
        }
    };
    let exec = |d: DataRef| -> usize {
        match cfg.plan {
            DistributionPlan::BandDiamond if d.i - d.j >= cfg.band_width => {
                diamond.owner(d.i, d.j)
            }
            _ => owner(d),
        }
    };

    let tasks: Vec<DesTask> = (0..dag.graph.len())
        .map(|t| {
            let w = dag.graph.spec(t).writes.expect("Cholesky tasks write a tile");
            DesTask { proc: exec(w), duration: task_duration(&dag, t, &cfg.machine) }
        })
        .collect();

    // Write-back accounting: tiles whose execution site differs from the
    // owner move in and back at most once each (§VII-B).
    let mut writeback_bytes = 0u64;
    {
        let nt = initial.nt();
        let b = initial.tile_size();
        let ranks = &dag.analysis.final_ranks;
        for i in 0..nt {
            for j in 0..=i {
                let d = DataRef { i, j };
                if exec(d) != owner(d) {
                    let r = ranks.rank(i, j);
                    let bytes = if i == j || 2 * r >= b {
                        (b * b * 8) as u64
                    } else if r == 0 {
                        0
                    } else {
                        (8 * r * 2 * b) as u64
                    };
                    writeback_bytes += 2 * bytes;
                }
            }
        }
    }

    let des_cfg = DesConfig {
        nprocs: nodes,
        cores_per_proc: cfg.machine.cores_per_node,
        latency_s: cfg.machine.latency_s,
        bandwidth_bps: cfg.machine.bandwidth_bps,
        dep_overhead_s: cfg.machine.dep_overhead_s,
        task_mgmt_s: cfg.machine.task_overhead_s,
    };
    // Ready-queue policy of the simulated runtime. Static policies
    // precompute one key table; the two dynamic ones consult the machine
    // model — comm-aware ranking prices cross-node edges with this
    // network, and the rank-aware lookahead prices kernels from the
    // snapshot's measured rank distribution, then keeps correcting those
    // estimates from simulated durations via `on_task_finished`.
    let dur = |t: usize| tasks[t].duration;
    let mut sched: Box<dyn Scheduler> = match cfg.sched {
        SchedPolicy::CommAwareUpwardRank => {
            let proc_of: Vec<usize> = tasks.iter().map(|t| t.proc).collect();
            let keys = upward_rank_comm_keys(
                &dag.graph,
                dur,
                &proc_of,
                &CommCosts::from_machine(&cfg.machine),
            );
            Box::new(StaticScheduler::new(keys)?)
        }
        SchedPolicy::RankAwareLookahead => {
            let mut evo = RankEvolution::default();
            for i in 0..initial.nt() {
                for j in 0..=i {
                    let r = initial.rank(i, j);
                    if r > 0 {
                        evo.record(r, r);
                    }
                }
            }
            let profile = RankProfile::from_histogram(evo.histogram(), initial.tile_size());
            let model = CostModel::from_machine(&cfg.machine, &profile);
            Box::new(LookaheadScheduler::with_cost_model(&dag.graph, &model)?)
        }
        p => Box::new(StaticScheduler::new(queue_keys(&dag.graph, dur, p))?),
    };
    let report =
        simulate_with_scheduler_faults(&dag.graph, &tasks, &des_cfg, sched.as_mut(), faults)?;

    // Critical path without runtime overhead: pure kernel chain (§VIII-G).
    let cp = runtime::critical_path::critical_path(&dag.graph, |t| {
        task_duration(&dag, t, &cfg.machine)
    });

    // Generation + compression phase model (Fig. 11): both are
    // embarrassingly parallel over all cores of all nodes.
    let nt = initial.nt();
    let b = initial.tile_size() as f64;
    let total_cores = (nodes * cfg.machine.cores_per_node) as f64;
    let mut gen_flops = 0.0;
    let mut comp_core_seconds = 0.0;
    for i in 0..nt {
        for j in 0..=i {
            // ~60 flops per kernel-matrix entry (distance + exp)
            gen_flops += 60.0 * b * b;
            if i != j {
                let r = dag.analysis.final_ranks.rank(i, j).max(1);
                // truncated pivoted QR ≈ 4·b²·(k+1), rank-limited rate
                let fl = 4.0 * b * b * (r as f64 + 1.0);
                comp_core_seconds += cfg.machine.core_time(fl, r);
            }
        }
    }
    let generation_seconds = cfg.machine.dense_kernel_time(gen_flops) / total_cores;
    let compression_seconds = comp_core_seconds / total_cores;

    Ok(SimReport {
        factorization_seconds: report.makespan,
        analysis_seconds,
        analysis_bytes: dag.analysis.memory_bytes(),
        dag_tasks: dag.graph.len(),
        dense_dag_tasks: dag.analysis.dense_tasks(),
        critical_path_seconds: cp.length,
        comm: report.comm,
        writeback_bytes,
        load_imbalance: report.load_imbalance(),
        breakdown: report.trace.breakdown(),
        generation_seconds,
        compression_seconds,
        crashes: report.crashes,
        migrated_tasks: report.migrated,
        reexecuted_tasks: report.reexecuted,
        corruptions: report.corruptions,
        trace: report.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_compress::SyntheticRankModel;

    fn snapshot(nt: usize, shape: f64) -> RankSnapshot {
        SyntheticRankModel::from_application(nt, 1024, shape, 1e-4).snapshot()
    }

    fn base_cfg(plan: DistributionPlan, trimmed: bool) -> SimConfig {
        SimConfig {
            machine: MachineModel::shaheen_ii(),
            nodes: 16,
            plan,
            trimmed,
            rank_cap: usize::MAX,
            band_width: 2,
            sched: SchedPolicy::PanelPriority,
        }
    }

    #[test]
    fn makespan_at_least_critical_path() {
        let s = snapshot(48, 1e-3);
        let r = simulate_cholesky(&s, &base_cfg(DistributionPlan::Lorapo, false));
        assert!(r.factorization_seconds >= r.critical_path_seconds);
        assert!(r.roofline_efficiency() <= 1.0);
    }

    #[test]
    fn trimming_helps_on_sparse_matrices() {
        // The paper's regime: NT³ ≫ node count, so per-task runtime
        // overhead of the untrimmed DAG rivals the critical path.
        let s = SyntheticRankModel::from_application(128, 256, 2e-4, 1e-4).snapshot();
        let untrimmed = simulate_cholesky(&s, &base_cfg(DistributionPlan::Lorapo, false));
        let trimmed = simulate_cholesky(&s, &base_cfg(DistributionPlan::Lorapo, true));
        assert!(trimmed.dag_tasks < untrimmed.dag_tasks);
        assert!(
            trimmed.factorization_seconds < untrimmed.factorization_seconds,
            "trimmed {} vs untrimmed {}",
            trimmed.factorization_seconds,
            untrimmed.factorization_seconds
        );
    }

    #[test]
    fn trimming_neutral_on_dense_matrices() {
        let s = snapshot(40, 5e-2); // fully dense structure
        let untrimmed = simulate_cholesky(&s, &base_cfg(DistributionPlan::Lorapo, false));
        let trimmed = simulate_cholesky(&s, &base_cfg(DistributionPlan::Lorapo, true));
        // no null tiles ⇒ same DAG ⇒ same time (the Fig. 4 convergence)
        assert_eq!(trimmed.dag_tasks, untrimmed.dag_tasks);
        let rel = (trimmed.factorization_seconds - untrimmed.factorization_seconds).abs()
            / untrimmed.factorization_seconds;
        assert!(rel < 1e-9, "dense matrices should be unaffected: {rel}");
    }

    #[test]
    fn band_reduces_time_vs_lorapo() {
        let s = snapshot(64, 1e-3);
        let lorapo = simulate_cholesky(&s, &base_cfg(DistributionPlan::Lorapo, true));
        let band = simulate_cholesky(&s, &base_cfg(DistributionPlan::Band, true));
        assert!(
            band.factorization_seconds <= lorapo.factorization_seconds * 1.02,
            "band {} vs lorapo {}",
            band.factorization_seconds,
            lorapo.factorization_seconds
        );
    }

    #[test]
    fn diamond_improves_load_balance() {
        let s = snapshot(64, 1e-3);
        let band = simulate_cholesky(&s, &base_cfg(DistributionPlan::Band, true));
        let diamond = simulate_cholesky(&s, &base_cfg(DistributionPlan::BandDiamond, true));
        assert!(
            diamond.load_imbalance <= band.load_imbalance * 1.05,
            "diamond LI {} vs band LI {}",
            diamond.load_imbalance,
            band.load_imbalance
        );
        assert!(diamond.writeback_bytes > 0, "remapping must move tiles");
        assert_eq!(band.writeback_bytes, 0, "owner-computes moves nothing extra");
    }

    #[test]
    fn hicma_parsec_beats_lorapo() {
        // The headline result (Figs. 9/10): full HiCMA-PaRSEC vs Lorapo.
        let s = snapshot(64, 5e-4);
        let lorapo = simulate_cholesky(&s, &base_cfg(DistributionPlan::Lorapo, false));
        let ours = simulate_cholesky(&s, &SimConfig::hicma_parsec(MachineModel::shaheen_ii(), 16));
        assert!(
            ours.factorization_seconds < lorapo.factorization_seconds,
            "ours {} vs lorapo {}",
            ours.factorization_seconds,
            lorapo.factorization_seconds
        );
    }

    #[test]
    fn more_nodes_not_slower_at_scale() {
        let s = snapshot(96, 1e-3);
        let mut cfg = SimConfig::hicma_parsec(MachineModel::shaheen_ii(), 4);
        let r4 = simulate_cholesky(&s, &cfg);
        cfg.nodes = 16;
        let r16 = simulate_cholesky(&s, &cfg);
        assert!(
            r16.factorization_seconds <= r4.factorization_seconds * 1.1,
            "16 nodes {} vs 4 nodes {}",
            r16.factorization_seconds,
            r4.factorization_seconds
        );
    }

    #[test]
    fn node_crash_costs_simulated_time() {
        use runtime::des::DesCrash;
        let s = snapshot(48, 1e-3);
        let cfg = base_cfg(DistributionPlan::Lorapo, true);
        let base = simulate_cholesky(&s, &cfg);
        // A long detection/failover window makes the recovery cost
        // unambiguous (a tiny one can hide inside surviving nodes' idle
        // time in this first-order model).
        let sched = FaultSchedule {
            crashes: vec![DesCrash { proc: 3, at: base.factorization_seconds * 0.5 }],
            restart_delay_s: base.factorization_seconds * 2.0,
            ..FaultSchedule::none()
        };
        let faulty = simulate_cholesky_faulty(&s, &cfg, &sched).unwrap();
        assert_eq!(faulty.crashes, 1);
        assert!(faulty.migrated_tasks > 0);
        assert!(
            faulty.factorization_seconds > base.factorization_seconds,
            "crash recovery cannot be free: {} vs {}",
            faulty.factorization_seconds,
            base.factorization_seconds
        );
    }

    #[test]
    fn store_corruption_prices_lineage_healing() {
        use runtime::FaultPlan;
        let s = snapshot(48, 1e-3);
        let cfg = base_cfg(DistributionPlan::Lorapo, true);
        let base = simulate_cholesky(&s, &cfg);
        // Derive the DES schedule from the same functional plan the
        // engine-side integrity tests inject — one seed, both engines.
        let plan = FaultPlan::new(11)
            .with_store_corruption(3, 1, 0, base.factorization_seconds * 0.5);
        let sched = FaultSchedule::from_plan(&plan, base.factorization_seconds * 2.0);
        let faulty = simulate_cholesky_faulty(&s, &cfg, &sched).unwrap();
        assert_eq!(faulty.corruptions, 1);
        assert_eq!(faulty.crashes, 0);
        assert!(
            faulty.factorization_seconds > base.factorization_seconds,
            "healing a mid-run corruption cannot be free: {} vs {}",
            faulty.factorization_seconds,
            base.factorization_seconds
        );
    }

    #[test]
    fn phase_model_reports_positive_times() {
        let s = snapshot(32, 1e-3);
        let r = simulate_cholesky(&s, &base_cfg(DistributionPlan::BandDiamond, true));
        assert!(r.generation_seconds > 0.0);
        assert!(r.compression_seconds > 0.0);
        assert!(r.analysis_bytes > 0);
    }
}

//! Distributed-memory TLR Cholesky with real numerics.
//!
//! Runs the factorization across emulated ranks (separate address
//! spaces, tiles shipped as messages — `runtime::distributed`), under any
//! of the paper's data distributions, with optional execution remapping
//! (§VII-B's dissociation of ownership from execution). This is the
//! strongest validation the reproduction has: a wrong owner function, a
//! missing dataflow edge, or a remap that forgets to ship a tile breaks
//! *here*, not just in a simulator.
//!
//! The data layout follows PaRSEC's on-demand shipping, collapsed to
//! setup time: each tile's initial version starts at the rank that first
//! writes it, and the final version is gathered from the rank of its
//! last writer.

use crate::dag::{build_cholesky_dag, DagConfig, TaskKind};
use distribution::TileDistribution;
use parking_lot::Mutex;
use runtime::distributed::execute_distributed;
use runtime::graph::{DataRef, TaskId};
use std::collections::HashMap;
use tlr_compress::kernels::{gemm_kernel, potrf_kernel, syrk_kernel, trsm_kernel};
use tlr_compress::{CompressionConfig, Tile, TlrMatrix};
use tlr_linalg::CholeskyError;

use crate::factorize::FactorConfig;

/// Factor `matrix = L·Lᵀ` across `nprocs` emulated distributed-memory
/// ranks. `exec` maps each tile to the rank that executes the tasks
/// writing it (pass the data distribution itself for owner-computes, or
/// a remapping distribution for the §VII-B execution dissociation).
pub fn factorize_distributed(
    matrix: &mut TlrMatrix,
    cfg: &FactorConfig,
    nprocs: usize,
    exec: &dyn TileDistribution,
) -> Result<(), CholeskyError> {
    let nt = matrix.nt();
    let tile_size = matrix.tile_size();
    let dag = build_cholesky_dag(
        &matrix.rank_snapshot(),
        &DagConfig { trimmed: cfg.trimmed, rank_cap: cfg.max_rank },
    );

    // Execution rank per task = exec mapping of the tile it writes.
    let exec_rank: Vec<usize> = (0..dag.graph.len())
        .map(|t| {
            let w = dag.graph.spec(t).writes.expect("Cholesky tasks write");
            exec.owner(w.i, w.j)
        })
        .collect();

    // Predecessor lookup: task → (producer, datum) pairs.
    let mut preds: Vec<Vec<(TaskId, DataRef)>> = vec![Vec::new(); dag.graph.len()];
    for src in 0..dag.graph.len() {
        for e in dag.graph.successors(src) {
            preds[e.dst].push((src, e.data));
        }
    }

    // First/last writer per tile (for initial placement and gathering).
    let mut first_writer: HashMap<(usize, usize), TaskId> = HashMap::new();
    let mut last_writer: HashMap<(usize, usize), TaskId> = HashMap::new();
    for t in 0..dag.graph.len() {
        let w = dag.graph.spec(t).writes.unwrap();
        first_writer.entry((w.i, w.j)).or_insert(t);
        last_writer.insert((w.i, w.j), t);
    }

    // Initial stores: ship each tile to its first writer's rank.
    let mut initial: Vec<HashMap<DataRef, Tile>> = vec![HashMap::new(); nprocs];
    let mut placement: HashMap<(usize, usize), usize> = HashMap::new();
    for i in 0..nt {
        for j in 0..=i {
            let rank = first_writer
                .get(&(i, j))
                .map(|&t| exec_rank[t])
                .unwrap_or_else(|| exec.owner(i, j).min(nprocs - 1));
            placement.insert((i, j), rank);
            initial[rank].insert(DataRef { i, j }, matrix.take_tile(i, j));
        }
    }

    let compression = CompressionConfig {
        accuracy: cfg.accuracy,
        max_rank: cfg.max_rank,
        keep_dense_ratio: 1.0,
    };
    let error: Mutex<Option<CholeskyError>> = Mutex::new(None);

    let find_producer = |t: TaskId, d: DataRef| -> Option<TaskId> {
        preds[t].iter().find(|(_, dd)| *dd == d).map(|(p, _)| *p)
    };

    let stores = execute_distributed(&dag.graph, nprocs, &exec_rank, initial, |t, ctx| {
        let w = dag.graph.spec(t).writes.unwrap();
        if error.lock().is_some() {
            // Poisoned: keep the dataflow moving with the untouched tile.
            let cur = ctx
                .take(w)
                .or_else(|| {
                    find_producer(t, w).and_then(|p| ctx.take_remote(p, w))
                })
                .unwrap_or(Tile::Null { rows: 0, cols: 0 });
            ctx.put(w, cur.clone());
            return cur;
        }
        // The written tile's current version: local, or shipped from a
        // remote previous writer (possible when two writers of the same
        // tile were remapped differently — not the case for tile
        // Cholesky, but `take_remote` keeps the engine general).
        let mut out = ctx
            .take(w)
            .or_else(|| find_producer(t, w).and_then(|p| ctx.take_remote(p, w)))
            .expect("written tile must be present");
        match dag.kinds[t] {
            TaskKind::Potrf { k } => {
                if let Err(e) = potrf_kernel(&mut out) {
                    *error.lock() = Some(CholeskyError { pivot: k * tile_size + e.pivot });
                }
            }
            TaskKind::Trsm { k, m } => {
                let _ = m;
                let ldata = DataRef { i: k, j: k };
                let l = ctx.get(find_producer(t, ldata), ldata).clone();
                trsm_kernel(&l, &mut out);
            }
            TaskKind::Syrk { k, m } => {
                let adata = DataRef { i: m, j: k };
                let a = ctx.get(find_producer(t, adata), adata).clone();
                syrk_kernel(&a, &mut out);
            }
            TaskKind::Gemm { k, m, n } => {
                let adata = DataRef { i: m, j: k };
                let bdata = DataRef { i: n, j: k };
                let a = ctx.get(find_producer(t, adata), adata).clone();
                let b = ctx.get(find_producer(t, bdata), bdata).clone();
                gemm_kernel(&a, &b, &mut out, &compression);
            }
        }
        ctx.put(w, out.clone());
        out
    });

    // Gather: the final version of each tile lives at its last writer's
    // rank (or wherever it was initially placed if never written).
    for i in 0..nt {
        for j in 0..=i {
            let rank = last_writer
                .get(&(i, j))
                .map(|&t| exec_rank[t])
                .unwrap_or(placement[&(i, j)]);
            let tile = stores[rank]
                .get(&DataRef { i, j })
                .cloned()
                .expect("final tile must exist at its last writer's rank");
            matrix.put_tile(i, j, tile);
        }
    }

    match error.into_inner() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorize::factorize;
    use distribution::{BandDistribution, DiamondDistribution, LorapoHybrid, TwoDBlockCyclic};
    use tlr_linalg::norms::relative_diff;
    use tlr_linalg::Matrix;

    fn gaussian_dense(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64) / (n as f64 / 8.0);
            let v = (-d * d).exp();
            if i == j {
                v + 1e-3
            } else {
                v
            }
        })
    }

    fn check_against_shared(nprocs: usize, dist: &dyn TileDistribution) {
        let n = 120;
        let b = 24;
        let acc = 1e-8;
        let dense = gaussian_dense(n);
        let ccfg = CompressionConfig::with_accuracy(acc);
        let mut shared = TlrMatrix::from_dense(&dense, b, &ccfg);
        let mut distr = TlrMatrix::from_dense(&dense, b, &ccfg);
        let fcfg = FactorConfig::with_accuracy(acc);
        factorize(&mut shared, &fcfg).unwrap();
        factorize_distributed(&mut distr, &fcfg, nprocs, dist).unwrap();
        let ls = shared.to_dense_lower();
        let ld = distr.to_dense_lower();
        assert!(
            relative_diff(&ld, &ls) < 1e-12,
            "distributed result must equal shared-memory ({})",
            dist.name()
        );
    }

    #[test]
    fn matches_shared_memory_2dbc() {
        check_against_shared(4, &TwoDBlockCyclic::new(4));
    }

    #[test]
    fn matches_shared_memory_lorapo() {
        check_against_shared(3, &LorapoHybrid::new(3));
    }

    #[test]
    fn matches_shared_memory_band() {
        check_against_shared(6, &BandDistribution::new(6));
    }

    #[test]
    fn matches_shared_memory_diamond_remap() {
        // Execution fully remapped onto the diamond grid — data still
        // travels correctly.
        check_against_shared(6, &DiamondDistribution::new(6));
    }

    #[test]
    fn single_rank_degenerates_to_serial() {
        check_against_shared(1, &TwoDBlockCyclic::new(1));
    }

    #[test]
    fn spd_failure_propagates() {
        let n = 64;
        let dense = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i == 40 {
                    -3.0
                } else {
                    2.0
                }
            } else {
                0.01 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let ccfg = CompressionConfig::with_accuracy(1e-8);
        let mut m = TlrMatrix::from_dense(&dense, 16, &ccfg);
        let err = factorize_distributed(
            &mut m,
            &FactorConfig::with_accuracy(1e-8),
            4,
            &TwoDBlockCyclic::new(4),
        )
        .unwrap_err();
        assert!(err.pivot <= 56, "pivot {}", err.pivot);
    }
}

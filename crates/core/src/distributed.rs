//! Distributed-memory TLR Cholesky with real numerics.
//!
//! Runs the factorization across emulated ranks (separate address
//! spaces, tiles shipped as messages — `runtime::distributed`), under any
//! of the paper's data distributions, with optional execution remapping
//! (§VII-B's dissociation of ownership from execution). This is the
//! strongest validation the reproduction has: a wrong owner function, a
//! missing dataflow edge, or a remap that forgets to ship a tile breaks
//! *here*, not just in a simulator.
//!
//! All of it runs on the single distributed engine
//! ([`runtime::engine::DistEngine`]), driven through
//! [`Session::distributed`](crate::session::Session::distributed): the
//! session owns the plan → kernel-env → run → gather pipeline, and a
//! fault layer ([`FaultPlan`](runtime::fault::FaultPlan) — message loss,
//! duplication, delay jitter, rank crashes, kernel failures) composes
//! onto it with
//! [`with_fault_layer`](crate::session::Session::with_fault_layer).
//! Recovery is retransmission, dedup and task re-execution; the factor
//! is bit-identical to the fault-free run for any survivable plan. The
//! `factorize_distributed{,_counted,_ft}` entry points remain as
//! deprecated one-call shims over the session.
//!
//! The data layout follows PaRSEC's on-demand shipping, collapsed to
//! setup time: each tile's initial version starts at the rank that first
//! writes it, and the final version is gathered from the rank of its
//! last writer.

use crate::dag::{CholeskyDag, TaskKind};
use crate::session::{RunError, Session};
use distribution::TileDistribution;
use parking_lot::Mutex;
use runtime::des::CommStats;
use runtime::engine::{EngineError, RankCtx};
use runtime::fault::{FaultStats, FtConfig, FtError};
use runtime::graph::{DataRef, TaskId};
use runtime::obs::RunEvent;
use std::collections::HashMap;
use std::fmt;
use tlr_compress::kernels::{gemm_kernel, potrf_kernel, syrk_kernel, trsm_kernel};
use tlr_compress::{SealedTile, Tile, TlrMatrix};
use tlr_linalg::CholeskyError;

use crate::factorize::FactorConfig;

/// The symbolic skeleton of a distributed run, as the tests pin it: the
/// trimmed DAG plus the task→rank mapping the static distribution
/// produces. Production code plans through
/// [`crate::plan::SymbolicPlan`]; this shorthand serves the tests that
/// compare against the baseline mapping.
#[cfg(test)]
pub(crate) struct DistPlan {
    pub(crate) dag: CholeskyDag,
    pub(crate) exec_rank: Vec<usize>,
}

/// Plan with no overrides (the static distribution alone) — test
/// shorthand over [`crate::plan::build_plan`].
#[cfg(test)]
pub(crate) fn plan_distribution(
    matrix: &TlrMatrix,
    cfg: &FactorConfig,
    nprocs: usize,
    exec: &dyn TileDistribution,
) -> DistPlan {
    let plan = crate::plan::build_plan(
        cfg,
        &matrix.rank_snapshot(),
        Some(crate::plan::DistPlanInputs {
            nprocs,
            exec,
            ft: false,
            verify: false,
            trace: false,
            overrides: HashMap::new(),
            replan_slack: None,
        }),
    )
    .expect("planning a valid snapshot cannot fail");
    let exec_rank = plan
        .dist
        .as_ref()
        .expect("distributed inputs produce a distributed plan")
        .mapping
        .read()
        .exec_rank
        .clone();
    DistPlan {
        dag: plan.dag,
        exec_rank,
    }
}

/// Move the matrix tiles into per-rank initial stores according to the
/// plan's placement map — the numeric half of what used to be
/// `plan_distribution` (the symbolic half lives in [`crate::plan`]).
pub(crate) fn scatter_tiles(
    matrix: &mut TlrMatrix,
    placement: &HashMap<(usize, usize), usize>,
    nprocs: usize,
) -> Vec<HashMap<DataRef, Tile>> {
    let nt = matrix.nt();
    let mut initial: Vec<HashMap<DataRef, Tile>> = vec![HashMap::new(); nprocs];
    for i in 0..nt {
        for j in 0..=i {
            initial[placement[&(i, j)]].insert(DataRef { i, j }, matrix.take_tile(i, j));
        }
    }
    initial
}

/// Payload abstraction for the distributed pipeline: the same kernel
/// dispatch and tile gathering run on plain [`Tile`]s (no integrity
/// layer, zero extra cost) or on digest-sealed tiles
/// ([`SealedTile`], armed by [`FactorConfig::verify_integrity`] or a
/// corrupting fault plan). `from_tile` is where checksum maintenance
/// happens: sealing a freshly written tile recomputes its digest.
pub(crate) trait TilePayload: Clone {
    /// Borrow the tile contents (for kernel reads).
    fn tile(&self) -> &Tile;
    /// Unwrap the tile (for in-place kernel writes and gathering).
    fn into_tile(self) -> Tile;
    /// Wrap a freshly written tile (reseals under the integrity layer).
    fn from_tile(t: Tile) -> Self;
}

impl TilePayload for Tile {
    fn tile(&self) -> &Tile {
        self
    }
    fn into_tile(self) -> Tile {
        self
    }
    fn from_tile(t: Tile) -> Self {
        t
    }
}

impl TilePayload for SealedTile {
    fn tile(&self) -> &Tile {
        SealedTile::tile(self)
    }
    fn into_tile(self) -> Tile {
        SealedTile::into_tile(self)
    }
    fn from_tile(t: Tile) -> Self {
        SealedTile::seal(t)
    }
}

/// Kernel dispatch for distributed runs. The error slot keeps the
/// *minimum* failing pivot so concurrent failures report
/// deterministically.
pub(crate) struct KernelEnv<'a> {
    dag: &'a CholeskyDag,
    preds: &'a [Vec<(TaskId, DataRef)>],
    tile_size: usize,
    compression: tlr_compress::CompressionConfig,
    pub(crate) error: Mutex<Option<CholeskyError>>,
}

impl KernelEnv<'_> {
    fn find_producer(&self, t: TaskId, d: DataRef) -> Option<TaskId> {
        self.preds[t]
            .iter()
            .find(|(_, dd)| *dd == d)
            .map(|(p, _)| *p)
    }

    /// Record a pivot failure, keeping the earliest (smallest) pivot —
    /// with multiple ranks failing concurrently, the report must not
    /// depend on which failure message lands last.
    fn record_error(&self, e: CholeskyError) {
        let mut slot = self.error.lock();
        match &*slot {
            Some(prev) if prev.pivot <= e.pivot => {}
            _ => *slot = Some(e),
        }
    }

    pub(crate) fn run<P: TilePayload>(&self, t: TaskId, ctx: &mut RankCtx<'_, P>) -> P {
        self.run_dispatch(t, ctx, &|p| p)
    }

    /// [`run`](Self::run) for a member of a batched task: `of` maps each
    /// original producer id to the batched task the engine actually ran,
    /// which is how shipped inputs are keyed in the rank's inbox.
    pub(crate) fn run_mapped<P: TilePayload>(
        &self,
        t: TaskId,
        ctx: &mut RankCtx<'_, P>,
        of: &[TaskId],
    ) -> P {
        self.run_dispatch(t, ctx, &|p| of[p])
    }

    fn run_dispatch<P: TilePayload>(
        &self,
        t: TaskId,
        ctx: &mut RankCtx<'_, P>,
        map: &dyn Fn(TaskId) -> TaskId,
    ) -> P {
        let w = self
            .dag
            .graph
            .spec(t)
            .writes
            .expect("every Cholesky task writes its tile");
        if self.error.lock().is_some() {
            // Poisoned: keep the dataflow moving with the untouched tile.
            let cur = ctx
                .take(w)
                .or_else(|| {
                    self.find_producer(t, w)
                        .and_then(|p| ctx.take_remote(map(p), w))
                })
                .unwrap_or_else(|| P::from_tile(Tile::Null { rows: 0, cols: 0 }));
            ctx.put(w, cur.clone());
            return cur;
        }
        // The written tile's current version: local, or shipped from a
        // remote previous writer (possible when two writers of the same
        // tile were remapped differently — not the case for tile
        // Cholesky, but `take_remote` keeps the engine general).
        let mut out = ctx
            .take(w)
            .or_else(|| {
                self.find_producer(t, w)
                    .and_then(|p| ctx.take_remote(map(p), w))
            })
            .expect("written tile must be present")
            .into_tile();
        match self.dag.kinds[t] {
            TaskKind::Potrf { k } => {
                if let Err(e) = potrf_kernel(&mut out) {
                    self.record_error(CholeskyError {
                        pivot: k * self.tile_size + e.pivot,
                    });
                }
            }
            TaskKind::Trsm { k, m } => {
                let _ = m;
                let ldata = DataRef { i: k, j: k };
                let l = ctx
                    .get(self.find_producer(t, ldata).map(map), ldata)
                    .tile()
                    .clone();
                trsm_kernel(&l, &mut out);
            }
            TaskKind::Syrk { k, m } => {
                let adata = DataRef { i: m, j: k };
                let a = ctx
                    .get(self.find_producer(t, adata).map(map), adata)
                    .tile()
                    .clone();
                syrk_kernel(&a, &mut out);
            }
            TaskKind::Gemm { k, m, n } => {
                let adata = DataRef { i: m, j: k };
                let bdata = DataRef { i: n, j: k };
                let a = ctx
                    .get(self.find_producer(t, adata).map(map), adata)
                    .tile()
                    .clone();
                let b = ctx
                    .get(self.find_producer(t, bdata).map(map), bdata)
                    .tile()
                    .clone();
                gemm_kernel(&a, &b, &mut out, &self.compression);
            }
        }
        let out = P::from_tile(out);
        ctx.put(w, out.clone());
        out
    }
}

/// Put the final tile versions back into the matrix from the per-rank
/// stores, using the (possibly migrated) final task→rank assignment.
pub(crate) fn gather_tiles<P: TilePayload>(
    matrix: &mut TlrMatrix,
    last_writer: &HashMap<(usize, usize), TaskId>,
    placement: &HashMap<(usize, usize), usize>,
    final_exec: &[usize],
    stores: &[HashMap<DataRef, P>],
) {
    let nt = matrix.nt();
    for i in 0..nt {
        for j in 0..=i {
            let rank = last_writer
                .get(&(i, j))
                .map(|&t| final_exec[t])
                .unwrap_or(placement[&(i, j)]);
            let tile = stores[rank]
                .get(&DataRef { i, j })
                .cloned()
                // A tile no task writes (e.g. a null tile the trimmed DAG
                // never touches) lives at its placement rank — unless that
                // rank crashed, in which case the runtime migrated its
                // checkpointed data to a survivor. The value never changed,
                // so any surviving copy is the right one.
                .or_else(|| {
                    stores
                        .iter()
                        .find_map(|s| s.get(&DataRef { i, j }).cloned())
                })
                .expect("final tile must exist in some surviving store");
            matrix.put_tile(i, j, tile.into_tile());
        }
    }
}

pub(crate) fn kernel_env<'a>(
    dag: &'a CholeskyDag,
    preds: &'a [Vec<(TaskId, DataRef)>],
    cfg: &FactorConfig,
    tile_size: usize,
) -> KernelEnv<'a> {
    KernelEnv {
        dag,
        preds,
        tile_size,
        // The configured compression policy, keep_dense_ratio included —
        // this used to pin the ratio to 1.0 regardless of the config.
        compression: cfg.compression(),
        error: Mutex::new(None),
    }
}

/// Factor `matrix = L·Lᵀ` across `nprocs` emulated distributed-memory
/// ranks. `exec` maps each tile to the rank that executes the tasks
/// writing it (pass the data distribution itself for owner-computes, or
/// a remapping distribution for the §VII-B execution dissociation).
///
/// Now a shim over [`Session::distributed`], so it inherits the
/// session's diagonal-shift retry driver
/// ([`FactorConfig::max_shift_retries`]).
#[deprecated(note = "use `Session::distributed(cfg, nprocs, exec).run(matrix)`")]
pub fn factorize_distributed(
    matrix: &mut TlrMatrix,
    cfg: &FactorConfig,
    nprocs: usize,
    exec: &dyn TileDistribution,
) -> Result<(), CholeskyError> {
    match Session::distributed(*cfg, nprocs, exec).run(matrix) {
        Ok(_) => Ok(()),
        Err(RunError::Numeric(e)) => Err(e),
        Err(e) => panic!("{e}"),
    }
}

/// [`factorize_distributed`] that also reports the inter-rank
/// communication volume (messages and payload bytes actually sent, i.e.
/// after owner-computes locality removed same-rank transfers). This is
/// the measured counterpart of the DES's modeled `CommStats` and feeds
/// the observability comparison tables.
#[deprecated(
    note = "use `Session::distributed(cfg, nprocs, exec).run(matrix)` and read `RunOutcome::comm`"
)]
pub fn factorize_distributed_counted(
    matrix: &mut TlrMatrix,
    cfg: &FactorConfig,
    nprocs: usize,
    exec: &dyn TileDistribution,
) -> Result<CommStats, CholeskyError> {
    match Session::distributed(*cfg, nprocs, exec).run(matrix) {
        Ok(out) => Ok(out
            .comm
            .expect("distributed runs always count communication")),
        Err(RunError::Numeric(e)) => Err(e),
        Err(e) => panic!("{e}"),
    }
}

/// Outcome of a fault-tolerant distributed factorization.
#[derive(Debug, Clone)]
pub struct FtFactorOutcome {
    /// Injected-fault and recovery accounting.
    pub stats: FaultStats,
    /// Virtual makespan of the run (seconds of emulated time).
    pub makespan: f64,
    /// Ordered crash/recovery and integrity events: every survived
    /// [`RunEvent::Crash`] is immediately followed by its matching
    /// [`RunEvent::Recovery`], and with the integrity layer armed every
    /// caught checksum mismatch appends a
    /// [`RunEvent::CorruptionDetected`] and every completed lineage heal
    /// a [`RunEvent::Healed`].
    pub events: Vec<RunEvent>,
}

/// Failure of a fault-tolerant distributed factorization: either the
/// matrix is numerically not SPD, or the fault plan was not survivable.
#[derive(Debug, Clone, PartialEq)]
pub enum FtFactorError {
    /// Pivot failure — same meaning as the shared-memory path.
    Numeric(CholeskyError),
    /// The runtime could not recover (all ranks dead, retries exhausted).
    Runtime(FtError),
}

impl fmt::Display for FtFactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtFactorError::Numeric(e) => write!(f, "matrix is not positive definite: {e:?}"),
            FtFactorError::Runtime(e) => write!(f, "unrecoverable runtime fault: {e}"),
        }
    }
}

impl std::error::Error for FtFactorError {}

impl From<FtError> for FtFactorError {
    fn from(e: FtError) -> Self {
        FtFactorError::Runtime(e)
    }
}

/// Factor `matrix` across emulated ranks under a seeded fault plan.
///
/// Semantics match [`factorize_distributed`]; on success the factor is
/// **bit-identical** to the fault-free (and shared-memory) result, no
/// matter what the plan dropped, duplicated, delayed or crashed — that
/// equivalence is the correctness contract of the recovery layer, and
/// `tests/fault_tolerance.rs` enforces it.
///
/// On `Err(FtFactorError::Runtime(_))` the matrix contents are
/// unspecified (tiles may be stuck on dead emulated ranks).
#[deprecated(
    note = "use `Session::distributed(cfg, nprocs, exec).with_fault_layer(ft).run(matrix)`"
)]
pub fn factorize_distributed_ft(
    matrix: &mut TlrMatrix,
    cfg: &FactorConfig,
    nprocs: usize,
    exec: &dyn TileDistribution,
    ft: &FtConfig,
) -> Result<FtFactorOutcome, FtFactorError> {
    match Session::distributed(*cfg, nprocs, exec)
        .with_fault_layer(ft)
        .run(matrix)
    {
        Ok(out) => Ok(out.ft.expect("fault layer was configured")),
        Err(RunError::Numeric(e)) => Err(FtFactorError::Numeric(e)),
        Err(RunError::Engine(EngineError::Fault(e))) => Err(FtFactorError::Runtime(e)),
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorize::factorize;
    use distribution::{BandDistribution, DiamondDistribution, LorapoHybrid, TwoDBlockCyclic};
    use runtime::fault::FaultPlan;
    use tlr_compress::CompressionConfig;
    use tlr_linalg::norms::relative_diff;
    use tlr_linalg::Matrix;

    fn gaussian_dense(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64) / (n as f64 / 8.0);
            let v = (-d * d).exp();
            if i == j {
                v + 1e-3
            } else {
                v
            }
        })
    }

    fn check_against_shared(nprocs: usize, dist: &dyn TileDistribution) {
        let n = 120;
        let b = 24;
        let acc = 1e-8;
        let dense = gaussian_dense(n);
        let ccfg = CompressionConfig::with_accuracy(acc);
        let mut shared = TlrMatrix::from_dense(&dense, b, &ccfg);
        let mut distr = TlrMatrix::from_dense(&dense, b, &ccfg);
        let fcfg = FactorConfig::with_accuracy(acc);
        factorize(&mut shared, &fcfg).unwrap();
        let out = Session::distributed(fcfg, nprocs, dist)
            .run(&mut distr)
            .unwrap();
        assert!(
            out.comm.is_some(),
            "distributed runs always count communication"
        );
        assert!(out.ft.is_none(), "no fault layer was configured");
        let ls = shared.to_dense_lower();
        let ld = distr.to_dense_lower();
        assert!(
            relative_diff(&ld, &ls) < 1e-12,
            "distributed result must equal shared-memory ({})",
            dist.name()
        );
    }

    #[test]
    fn matches_shared_memory_2dbc() {
        check_against_shared(4, &TwoDBlockCyclic::new(4));
    }

    #[test]
    fn matches_shared_memory_lorapo() {
        check_against_shared(3, &LorapoHybrid::new(3));
    }

    #[test]
    fn matches_shared_memory_band() {
        check_against_shared(6, &BandDistribution::new(6));
    }

    #[test]
    fn matches_shared_memory_diamond_remap() {
        // Execution fully remapped onto the diamond grid — data still
        // travels correctly.
        check_against_shared(6, &DiamondDistribution::new(6));
    }

    #[test]
    fn single_rank_degenerates_to_serial() {
        check_against_shared(1, &TwoDBlockCyclic::new(1));
    }

    /// The counted engine reports real communication: zero on one rank
    /// (everything is local), nonzero across ranks, and every message
    /// carries payload bytes.
    #[test]
    fn counted_comm_volume_tracks_distribution() {
        let n = 120;
        let b = 24;
        let acc = 1e-8;
        let dense = gaussian_dense(n);
        let ccfg = CompressionConfig::with_accuracy(acc);
        let fcfg = FactorConfig::with_accuracy(acc);

        let mut local = TlrMatrix::from_dense(&dense, b, &ccfg);
        let one = TwoDBlockCyclic::new(1);
        let comm1 = Session::distributed(fcfg, 1, &one)
            .run(&mut local)
            .unwrap()
            .comm
            .unwrap();
        assert_eq!(comm1.messages, 0, "single rank must not communicate");
        assert_eq!(comm1.bytes, 0);

        let mut distr = TlrMatrix::from_dense(&dense, b, &ccfg);
        let four = TwoDBlockCyclic::new(4);
        let comm4 = Session::distributed(fcfg, 4, &four)
            .run(&mut distr)
            .unwrap()
            .comm
            .unwrap();
        assert!(comm4.messages > 0, "4 ranks must exchange tiles");
        assert!(
            comm4.bytes >= 8 * comm4.messages,
            "each message carries ≥ one f64"
        );
    }

    /// The configured `keep_dense_ratio` reaches the distributed update
    /// kernels (it used to be silently pinned to `1.0`): a ratio of `0.0`
    /// densifies every recompressed tile, growing the stored factor,
    /// while leaving the numbers correct.
    #[test]
    fn keep_dense_ratio_threads_through_distributed_kernels() {
        let n = 120;
        let b = 24;
        let acc = 1e-8;
        let dense = gaussian_dense(n);
        let ccfg = CompressionConfig::with_accuracy(acc);
        let dist = TwoDBlockCyclic::new(4);

        let mut lr = TlrMatrix::from_dense(&dense, b, &ccfg);
        let fcfg = FactorConfig::with_accuracy(acc);
        let out_lr = Session::distributed(fcfg, 4, &dist).run(&mut lr).unwrap();

        let mut dense_m = TlrMatrix::from_dense(&dense, b, &ccfg);
        let mut fcfg0 = FactorConfig::with_accuracy(acc);
        fcfg0.keep_dense_ratio = 0.0;
        let out_dense = Session::distributed(fcfg0, 4, &dist)
            .run(&mut dense_m)
            .unwrap();

        assert!(
            out_dense.report.memory_after_f64 > out_lr.report.memory_after_f64,
            "ratio 0.0 must densify recompressed tiles ({} vs {} words)",
            out_dense.report.memory_after_f64,
            out_lr.report.memory_after_f64
        );
        // Densified storage holds the same numbers (exact UVᵀ product),
        // so the factors agree far below the compression accuracy.
        let diff = relative_diff(&dense_m.to_dense_lower(), &lr.to_dense_lower());
        assert!(diff < 100.0 * acc, "factor drifted: {diff}");
    }

    #[test]
    fn spd_failure_propagates() {
        let n = 64;
        let dense = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i == 40 {
                    -3.0
                } else {
                    2.0
                }
            } else {
                0.01 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let ccfg = CompressionConfig::with_accuracy(1e-8);
        let mut m = TlrMatrix::from_dense(&dense, 16, &ccfg);
        let dist = TwoDBlockCyclic::new(4);
        let err = Session::distributed(FactorConfig::with_accuracy(1e-8), 4, &dist)
            .run(&mut m)
            .unwrap_err();
        let RunError::Numeric(e) = err else {
            panic!("expected a numeric error, got {err}")
        };
        assert!(e.pivot <= 56, "pivot {}", e.pivot);
    }

    // ---------------- fault-tolerant engine ----------------

    fn check_ft_against_shared(nprocs: usize, dist: &dyn TileDistribution, ft: &FtConfig) {
        let n = 120;
        let b = 24;
        let acc = 1e-8;
        let dense = gaussian_dense(n);
        let ccfg = CompressionConfig::with_accuracy(acc);
        let mut shared = TlrMatrix::from_dense(&dense, b, &ccfg);
        let mut distr = TlrMatrix::from_dense(&dense, b, &ccfg);
        let fcfg = FactorConfig::with_accuracy(acc);
        factorize(&mut shared, &fcfg).unwrap();
        let out = Session::distributed(fcfg, nprocs, dist)
            .with_fault_layer(ft)
            .run(&mut distr)
            .unwrap();
        assert!(out.ft.is_some(), "fault layer was configured");
        assert!(
            out.comm.is_some(),
            "comm counting composes with the fault layer"
        );
        let diff = relative_diff(&distr.to_dense_lower(), &shared.to_dense_lower());
        assert!(
            diff == 0.0,
            "fault-tolerant factor must be bit-identical to shared memory \
             ({}, diff {diff})",
            dist.name()
        );
    }

    #[test]
    fn ft_fault_free_matches_shared_memory() {
        check_ft_against_shared(4, &TwoDBlockCyclic::new(4), &FtConfig::fault_free());
    }

    #[test]
    fn ft_lossy_network_matches_shared_memory() {
        let plan = FaultPlan::new(21)
            .with_drops(0.2)
            .with_duplicates(0.2)
            .with_jitter(1.0);
        check_ft_against_shared(4, &TwoDBlockCyclic::new(4), &FtConfig::with_plan(plan));
    }

    #[test]
    fn ft_crash_matches_shared_memory_on_remap() {
        let plan = FaultPlan::new(3).with_drops(0.1).with_crash(1, 15.0);
        check_ft_against_shared(6, &DiamondDistribution::new(6), &FtConfig::with_plan(plan));
    }

    #[test]
    fn ft_spd_failure_propagates() {
        let n = 64;
        let dense = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i == 40 {
                    -3.0
                } else {
                    2.0
                }
            } else {
                0.01 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let ccfg = CompressionConfig::with_accuracy(1e-8);
        let mut m = TlrMatrix::from_dense(&dense, 16, &ccfg);
        let dist = TwoDBlockCyclic::new(4);
        let ft = FtConfig::fault_free();
        let err = Session::distributed(FactorConfig::with_accuracy(1e-8), 4, &dist)
            .with_fault_layer(&ft)
            .run(&mut m)
            .unwrap_err();
        match err {
            RunError::Numeric(e) => assert!(e.pivot <= 56, "pivot {}", e.pivot),
            other => panic!("expected a numeric error, got {other}"),
        }
    }

    #[test]
    fn ft_unsurvivable_plan_reports_runtime_error() {
        let n = 96;
        let dense = gaussian_dense(n);
        let ccfg = CompressionConfig::with_accuracy(1e-8);
        let mut m = TlrMatrix::from_dense(&dense, 24, &ccfg);
        let plan = FaultPlan::new(0).with_crash(0, 1.0).with_crash(1, 2.0);
        let dist = TwoDBlockCyclic::new(2);
        let ft = FtConfig::with_plan(plan);
        let err = Session::distributed(FactorConfig::with_accuracy(1e-8), 2, &dist)
            .with_fault_layer(&ft)
            .run(&mut m)
            .unwrap_err();
        assert_eq!(
            err,
            RunError::Engine(EngineError::Fault(FtError::AllRanksCrashed))
        );
    }

    // ------------- deprecated shims stay faithful -------------

    #[allow(deprecated)]
    mod shims {
        use super::*;

        /// The counted shim reports the same volume the session counts.
        #[test]
        fn counted_shim_matches_session_comm() {
            let n = 120;
            let b = 24;
            let acc = 1e-8;
            let dense = gaussian_dense(n);
            let ccfg = CompressionConfig::with_accuracy(acc);
            let fcfg = FactorConfig::with_accuracy(acc);
            let dist = TwoDBlockCyclic::new(4);

            let mut via_shim = TlrMatrix::from_dense(&dense, b, &ccfg);
            let comm_shim = factorize_distributed_counted(&mut via_shim, &fcfg, 4, &dist).unwrap();

            let mut via_session = TlrMatrix::from_dense(&dense, b, &ccfg);
            let comm_session = Session::distributed(fcfg, 4, &dist)
                .run(&mut via_session)
                .unwrap()
                .comm
                .unwrap();

            assert_eq!(comm_shim.messages, comm_session.messages);
            assert_eq!(comm_shim.bytes, comm_session.bytes);
            assert_eq!(
                relative_diff(&via_shim.to_dense_lower(), &via_session.to_dense_lower()),
                0.0,
                "shim and session must produce the identical factor"
            );
        }

        /// The FT shim still maps engine faults back to [`FtFactorError`].
        #[test]
        fn ft_shim_maps_fault_errors_back() {
            let n = 96;
            let dense = gaussian_dense(n);
            let ccfg = CompressionConfig::with_accuracy(1e-8);
            let mut m = TlrMatrix::from_dense(&dense, 24, &ccfg);
            let plan = FaultPlan::new(0).with_crash(0, 1.0).with_crash(1, 2.0);
            let err = factorize_distributed_ft(
                &mut m,
                &FactorConfig::with_accuracy(1e-8),
                2,
                &TwoDBlockCyclic::new(2),
                &FtConfig::with_plan(plan),
            )
            .unwrap_err();
            assert_eq!(err, FtFactorError::Runtime(FtError::AllRanksCrashed));
        }

        /// The plain shim still returns `Ok(())` on a healthy run.
        #[test]
        fn plain_shim_factors() {
            let n = 96;
            let dense = gaussian_dense(n);
            let ccfg = CompressionConfig::with_accuracy(1e-8);
            let mut m = TlrMatrix::from_dense(&dense, 24, &ccfg);
            let dist = TwoDBlockCyclic::new(3);
            factorize_distributed(&mut m, &FactorConfig::with_accuracy(1e-8), 3, &dist).unwrap();
        }
    }
}

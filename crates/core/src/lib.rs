#![warn(missing_docs)]
//! The paper's contribution: TLR Cholesky over a dataflow runtime, with
//! dynamic DAG trimming and rank-aware execution remapping.
//!
//! Layer map (paper section → module):
//!
//! * §VI Algorithm 1 (matrix analysis for DAG trimming) → [`analysis`]
//! * §VI DAG trimming (task-graph construction that only materializes
//!   tasks on non-null / fill-in tiles) → [`dag`]
//! * §IV-B TLR Cholesky (shared-memory, real numerics) → [`mod@factorize`]
//! * unified factorization sessions (shared-memory and distributed runs,
//!   composable fault/trace/comm capabilities) → [`session`]
//! * solve phase (forward/backward TLR substitution) → [`solve`]
//! * §VII band + diamond distributions over the discrete-event machine →
//!   [`simulate`]
//! * Lorapo baseline (PSC'20 state of the art) → [`lorapo`]
//! * numerical validation helpers → [`verify`]
//! * symbolic/numeric phase split (reusable [`SymbolicPlan`] artifacts,
//!   the keyed [`PlanCache`]) → [`plan`]
//! * multi-tenant solver front-end with admission control → [`service`]

pub mod analysis;
pub mod batch;
pub mod dag;
pub mod distributed;
pub mod drift;
pub mod factorize;
pub mod lorapo;
pub mod plan;
pub mod replan;
pub mod service;
pub mod session;
pub mod simulate;
pub mod solve;
pub mod tuner;
pub mod verify;

pub use analysis::MatrixAnalysis;
pub use batch::{batch_panel_gemms, BatchObs, PanelBatch};
pub use dag::{build_cholesky_dag, CholeskyDag, DagConfig, TaskKind};
#[allow(deprecated)]
pub use distributed::{
    factorize_distributed, factorize_distributed_counted, factorize_distributed_ft,
};
pub use distributed::{FtFactorError, FtFactorOutcome};
pub use drift::{ClassDrift, CommDrift, DriftReport, DriftSpec};
pub use factorize::{
    factorize, factorize_with_plan, plan_factorization, FactorConfig, FactorMetrics, FactorReport,
    IntegrityMode,
};
pub use plan::{CacheEvents, PlanCache, PlanKey, PlanMode, SymbolicPlan};
pub use replan::{modeled_comm, CommReplanner};
pub use service::{ServiceError, SolveOutcome, SolveService, TenantConfig, TenantUsage};
pub use session::{RunError, RunOutcome, Session};
pub use simulate::{
    simulate_cholesky, simulate_cholesky_faulty, DistributionPlan, SimConfig, SimReport,
};
pub use solve::{solve_refined, solve_tlr, solve_tlr_multi, tlr_matvec};
pub use tuner::{tune_tile_size, TuneResult, TuneSample};
pub use verify::{estimate_condition, factorization_residual, solve_residual};

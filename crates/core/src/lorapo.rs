//! The Lorapo baseline (Cao et al., PASC'20) as a simulation preset.
//!
//! Lorapo is the state-of-the-art the paper compares against: TLR Cholesky
//! over PaRSEC with the hybrid 1D + 2D block-cyclic distribution,
//! owner-computes execution, **no** DAG trimming (tasks on null tiles are
//! still created and scheduled) and no critical-path-aware placement. The
//! presets here pin those choices so the figure harnesses can't
//! accidentally hand the baseline one of our optimizations.

use crate::simulate::{DistributionPlan, SimConfig};
use runtime::scheduler::SchedPolicy;
use runtime::machine::MachineModel;

/// Lorapo on the given machine/node count.
pub fn lorapo_config(machine: MachineModel, nodes: usize) -> SimConfig {
    SimConfig {
        machine,
        nodes,
        plan: DistributionPlan::Lorapo,
        trimmed: false,
        rank_cap: usize::MAX,
        band_width: 1,
        sched: SchedPolicy::PanelPriority,
    }
}

/// HiCMA-PaRSEC (this paper) on the given machine/node count.
pub fn hicma_parsec_config(machine: MachineModel, nodes: usize) -> SimConfig {
    SimConfig::hicma_parsec(machine, nodes)
}

/// The intermediate configurations of the incremental study (Fig. 7 /
/// Fig. 13): trimming only, then + band, then + diamond.
pub fn incremental_configs(machine: MachineModel, nodes: usize) -> [(&'static str, SimConfig); 4] {
    [
        ("lorapo", lorapo_config(machine.clone(), nodes)),
        (
            "+trimming",
            SimConfig {
                machine: machine.clone(),
                nodes,
                plan: DistributionPlan::Lorapo,
                trimmed: true,
                rank_cap: usize::MAX,
                band_width: 1,
                sched: SchedPolicy::PanelPriority,
            },
        ),
        (
            "+band",
            SimConfig {
                machine: machine.clone(),
                nodes,
                plan: DistributionPlan::Band,
                trimmed: true,
                rank_cap: usize::MAX,
                band_width: 2,
                sched: SchedPolicy::PanelPriority,
            },
        ),
        ("+diamond", hicma_parsec_config(machine, nodes)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_right_knobs() {
        let l = lorapo_config(MachineModel::shaheen_ii(), 64);
        assert!(!l.trimmed);
        assert_eq!(l.plan, DistributionPlan::Lorapo);
        let h = hicma_parsec_config(MachineModel::shaheen_ii(), 64);
        assert!(h.trimmed);
        assert_eq!(h.plan, DistributionPlan::BandDiamond);
    }

    #[test]
    fn incremental_sequence_is_ordered() {
        let seq = incremental_configs(MachineModel::fugaku(), 128);
        assert_eq!(seq[0].0, "lorapo");
        assert!(!seq[0].1.trimmed);
        assert!(seq[1].1.trimmed);
        assert_eq!(seq[2].1.plan, DistributionPlan::Band);
        assert_eq!(seq[3].1.plan, DistributionPlan::BandDiamond);
    }
}

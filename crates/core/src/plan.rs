//! Symbolic planning split from numeric execution.
//!
//! PaRSEC separates a factorization into a *symbolic* phase (unroll the
//! PTG, trim the execution space, map tasks to ranks, precompute
//! scheduling priorities) and a *numeric* phase (run kernels over the
//! planned graph). Until this module the two were fused: every
//! [`Session::run`](crate::session::Session::run) rebuilt the DAG,
//! distribution mapping, fused-batch groups and scheduler keys from
//! scratch — pure overhead on workloads that factor the *same tile
//! structure* repeatedly (the RBF mesh-deformation timestep loop, or a
//! multi-tenant solver service).
//!
//! [`SymbolicPlan`] is the reusable artifact of the symbolic phase: an
//! immutable, self-contained bundle of
//!
//! * the trimmed [`CholeskyDag`],
//! * precomputed scheduler state ([`SchedPlan`] key/lookahead tables on
//!   shared-memory plans, priority-driven topological orders on
//!   distributed ones),
//! * the fused panel-batch groups ([`crate::batch::PanelBatch`]),
//! * on distributed plans, the full placement machinery (task→rank map,
//!   per-tile initial placement, predecessor lookup, writer maps) plus
//!   the comm-feedback re-planner state, so converged placement
//!   overrides persist *with the plan* across runs.
//!
//! Plans are keyed by a structural fingerprint ([`PlanKey`]) folded with
//! the same FNV-1a chain as the tile-integrity digests
//! ([`tlr_compress::WordFold`]): tile grid, per-tile rank structure,
//! accuracy/rank caps, layout owner map, rank count, scheduling policy
//! and capability flags. Two matrices with the same key plan
//! identically, so a [`PlanCache`] can hand out one `Arc<SymbolicPlan>`
//! to every request that matches — a warm-cache run skips the symbolic
//! phase entirely. The factor is bit-identical either way: planning
//! decides *where and in what order* kernels run, never what they
//! compute (`tests/plan_cache.rs` holds every capability subset, policy
//! and batching mode to that).

use crate::batch::{batch_panel_gemms, PanelBatch};
use crate::dag::{build_cholesky_dag, CholeskyDag, DagConfig};
use crate::factorize::FactorConfig;
use crate::replan::CommReplanner;
use distribution::TileDistribution;
use parking_lot::{Mutex, RwLock};
use runtime::engine::EngineError;
use runtime::graph::{DataRef, TaskId};
use runtime::scheduler::{dist_priority_order, SchedPlan, SchedPolicy};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tlr_compress::{RankSnapshot, WordFold};

/// Packed lower-triangular tile index.
#[inline]
fn lower(i: usize, j: usize) -> usize {
    i * (i + 1) / 2 + j
}

/// Where a plan executes — part of the cache key, because shared and
/// distributed plans carry different artifacts, and distributed plans
/// bake capability flags into batching and payload decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanMode {
    /// Shared-memory work-stealing engine.
    Shared,
    /// Emulated distributed-memory ranks.
    Distributed {
        /// Emulated rank count (changes every mapping).
        nprocs: usize,
        /// A fault layer is configured (disables panel batching).
        ft: bool,
        /// The tile-integrity layer is armed, explicitly or by a
        /// corruption-injecting fault plan (sealed payloads, no
        /// batching).
        verify: bool,
        /// A virtual-time trace is recorded (no batching).
        trace: bool,
        /// A comm-feedback re-planner is embedded in the plan.
        replan: bool,
    },
}

/// Structural fingerprint of a factorization plan.
///
/// Two (matrix, session-config) pairs with equal keys produce the same
/// symbolic plan, so the key is what a [`PlanCache`] hashes on. The
/// `structure` field folds the per-tile rank snapshot (and, on
/// distributed plans, the layout's owner map) through the FNV-1a word
/// chain of the tile-integrity layer ([`tlr_compress::WordFold`]).
///
/// Worker-thread count is deliberately *not* part of the key: the DAG,
/// batching and scheduler tables are all thread-count independent, and
/// the factor is bit-identical across thread counts, so one plan serves
/// any pool size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Execution mode plus the capability flags that alter planning.
    pub mode: PlanMode,
    /// Tile-grid dimension.
    pub nt: usize,
    /// Tile size in rows.
    pub tile_size: usize,
    /// Whether the DAG is Algorithm-1 trimmed.
    pub trimmed: bool,
    /// Rank cap (HiCMA `maxrank`) used for fill-in estimates.
    pub max_rank: usize,
    /// Bit pattern of the recompression accuracy.
    pub accuracy_bits: u64,
    /// Ready-queue scheduling policy the plan precomputes keys for.
    pub sched: SchedPolicy,
    /// Whether panel batching was requested.
    pub batch_panels: bool,
    /// FNV-1a fold of the rank structure (and distributed owner map).
    pub structure: u64,
}

/// Everything a distributed plan needs beyond the DAG, split into the
/// immutable skeleton (here) and the override-dependent mapping
/// ([`DistMapping`], behind the `RwLock` so an embedded re-planner can
/// refresh placement between runs without rebuilding the plan).
pub(crate) struct DistStatic {
    pub(crate) nprocs: usize,
    /// Baseline owner rank per packed-lower tile (the layout's owner
    /// map, clamped to `nprocs`), baked in so the plan stays
    /// self-contained — no `&dyn TileDistribution` borrow outlives
    /// planning.
    base_owner: Vec<usize>,
    /// Task → (producer, datum) lookup for the kernel dispatch.
    pub(crate) preds: Vec<Vec<(TaskId, DataRef)>>,
    first_writer: HashMap<(usize, usize), TaskId>,
    pub(crate) last_writer: HashMap<(usize, usize), TaskId>,
    /// Whether this plan's capability flags permit panel batching.
    batchable: bool,
    /// Embedded comm-feedback re-planner: its converged overrides live
    /// with the cached plan, so repeated solves through the cache keep
    /// improving (and keep) their placement.
    pub(crate) replan: Option<Mutex<CommReplanner>>,
    /// The override-dependent half of the plan.
    pub(crate) mapping: RwLock<DistMapping>,
}

/// The parts of a distributed plan that depend on the current per-tile
/// rank overrides: task→rank mapping, initial tile placement, the
/// precomputed execution order, and (when batching applies) the fused
/// graph with its own rank map and order.
pub(crate) struct DistMapping {
    pub(crate) overrides: HashMap<(usize, usize), usize>,
    pub(crate) exec_rank: Vec<usize>,
    pub(crate) placement: HashMap<(usize, usize), usize>,
    /// Priority-driven topological order over the original DAG
    /// ([`dist_priority_order`]), computed once here instead of per run.
    pub(crate) order: Vec<TaskId>,
    pub(crate) batch: Option<DistBatch>,
}

/// Batched-execution artifacts of a distributed mapping.
pub(crate) struct DistBatch {
    pub(crate) pb: PanelBatch,
    pub(crate) exec_rank: Vec<usize>,
    pub(crate) order: Vec<TaskId>,
}

impl DistStatic {
    /// Rank of tile `(i, j)` under `overrides`, falling back to the
    /// baked-in layout owner.
    fn rank_of_tile(
        &self,
        overrides: &HashMap<(usize, usize), usize>,
        i: usize,
        j: usize,
    ) -> usize {
        overrides
            .get(&(i, j))
            .copied()
            .unwrap_or(self.base_owner[lower(i, j)])
            .min(self.nprocs - 1)
    }

    /// Derive the override-dependent mapping: exec ranks, placement,
    /// precomputed orders, and the batched graph when applicable. Called
    /// at plan build and again whenever the embedded re-planner moves a
    /// tile chain — a refresh re-derives from the existing DAG, never
    /// rebuilds it.
    pub(crate) fn derive_mapping(
        &self,
        dag: &CholeskyDag,
        nt: usize,
        policy: SchedPolicy,
        overrides: HashMap<(usize, usize), usize>,
    ) -> Result<DistMapping, EngineError> {
        let exec_rank: Vec<usize> = (0..dag.graph.len())
            .map(|t| {
                let w = dag
                    .graph
                    .spec(t)
                    .writes
                    .expect("every Cholesky task writes its tile");
                self.rank_of_tile(&overrides, w.i, w.j)
            })
            .collect();
        let mut placement: HashMap<(usize, usize), usize> = HashMap::new();
        for i in 0..nt {
            for j in 0..=i {
                let rank = self
                    .first_writer
                    .get(&(i, j))
                    .map(|&t| exec_rank[t])
                    .unwrap_or_else(|| self.rank_of_tile(&overrides, i, j));
                placement.insert((i, j), rank);
            }
        }
        let order = dist_priority_order(&dag.graph, policy, &exec_rank)?;
        let batch = if self.batchable {
            let pb = batch_panel_gemms(dag, Some(&exec_rank));
            let exec_rank_b = pb.exec_ranks(&exec_rank);
            let order_b = dist_priority_order(&pb.graph, policy, &exec_rank_b)?;
            Some(DistBatch {
                pb,
                exec_rank: exec_rank_b,
                order: order_b,
            })
        } else {
            None
        };
        Ok(DistMapping {
            overrides,
            exec_rank,
            placement,
            order,
            batch,
        })
    }

    /// Refresh the mapping in place for a new override set (re-planner
    /// feedback, or a cache hit from a session seeding different
    /// overrides).
    pub(crate) fn refresh(
        &self,
        dag: &CholeskyDag,
        nt: usize,
        policy: SchedPolicy,
        overrides: HashMap<(usize, usize), usize>,
    ) -> Result<(), EngineError> {
        let mapping = self.derive_mapping(dag, nt, policy, overrides)?;
        *self.mapping.write() = mapping;
        Ok(())
    }
}

/// The immutable artifact of the symbolic phase: trimmed DAG, scheduler
/// tables, fused-batch groups and (on distributed plans) the placement
/// machinery, built once and consumed by any number of numeric runs.
///
/// Build one with [`Session::plan`](crate::session::Session::plan) (or
/// implicitly through a [`PlanCache`]), execute it with
/// [`Session::run_with_plan`](crate::session::Session::run_with_plan).
/// A plan is tied to its [`PlanKey`]: running it against a matrix or
/// session configuration with a different key is rejected as
/// [`RunError::PlanMismatch`](crate::session::RunError::PlanMismatch)
/// instead of deadlocking or silently misplacing tiles.
pub struct SymbolicPlan {
    pub(crate) key: PlanKey,
    pub(crate) nt: usize,
    pub(crate) dag: CholeskyDag,
    /// Precomputed scheduler state for shared-memory runs (`None` on
    /// distributed plans, whose orders live in the mapping). Built over
    /// the *engine-visible* graph: the contracted batch graph when
    /// batching is on, the original DAG otherwise.
    pub(crate) sched: Option<SchedPlan>,
    /// Fused panel-batch groups for shared-memory runs.
    pub(crate) batch: Option<PanelBatch>,
    /// Distributed-plan machinery.
    pub(crate) dist: Option<DistStatic>,
    pub(crate) planning_seconds: f64,
}

impl SymbolicPlan {
    /// The structural fingerprint this plan was built for.
    pub fn key(&self) -> &PlanKey {
        &self.key
    }

    /// Tasks in the (trimmed) DAG the plan executes.
    pub fn tasks(&self) -> usize {
        self.dag.graph.len()
    }

    /// Wall-clock seconds the symbolic phase took to build this plan.
    /// A warm-cache run pays a key fold and a map lookup instead.
    pub fn planning_seconds(&self) -> f64 {
        self.planning_seconds
    }

    /// Whether this is a distributed-memory plan.
    pub fn is_distributed(&self) -> bool {
        self.dist.is_some()
    }
}

impl std::fmt::Debug for SymbolicPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymbolicPlan")
            .field("key", &self.key)
            .field("tasks", &self.tasks())
            .field("batched", &self.batch.is_some())
            .field("distributed", &self.dist.is_some())
            .field("planning_seconds", &self.planning_seconds)
            .finish()
    }
}

/// Inputs of a distributed plan build (everything
/// [`Session`](crate::session::Session) knows beyond the
/// [`FactorConfig`]).
pub(crate) struct DistPlanInputs<'a> {
    pub(crate) nprocs: usize,
    pub(crate) exec: &'a dyn TileDistribution,
    /// A fault layer is configured.
    pub(crate) ft: bool,
    /// The integrity layer is armed (explicitly or by the fault plan).
    pub(crate) verify: bool,
    /// A virtual-time trace will be recorded.
    pub(crate) trace: bool,
    /// Seed overrides (the deprecated external-re-planner path).
    pub(crate) overrides: HashMap<(usize, usize), usize>,
    /// Embed a [`CommReplanner`] with this imbalance slack.
    pub(crate) replan_slack: Option<f64>,
}

/// Compute the cache key for a (config, structure, mode) triple.
pub(crate) fn plan_key(
    cfg: &FactorConfig,
    snapshot: &RankSnapshot,
    dist: Option<&DistPlanInputs<'_>>,
) -> PlanKey {
    let nt = snapshot.nt();
    let mut fold = WordFold::new();
    for &r in snapshot.as_flat() {
        fold.push_usize(r);
    }
    let mode = match dist {
        None => PlanMode::Shared,
        Some(d) => {
            // The owner map is part of the structure: two layouts that
            // place tiles differently must not share a plan.
            for i in 0..nt {
                for j in 0..=i {
                    fold.push_usize(d.exec.owner(i, j).min(d.nprocs - 1));
                }
            }
            PlanMode::Distributed {
                nprocs: d.nprocs,
                ft: d.ft,
                verify: d.verify,
                trace: d.trace,
                replan: d.replan_slack.is_some(),
            }
        }
    };
    PlanKey {
        mode,
        nt,
        tile_size: snapshot.tile_size(),
        trimmed: cfg.trimmed,
        max_rank: cfg.max_rank,
        accuracy_bits: cfg.accuracy.to_bits(),
        sched: cfg.sched,
        batch_panels: cfg.batch_panels,
        structure: fold.finish(),
    }
}

/// Run the symbolic phase once: DAG build + batching + scheduler tables
/// (+ distribution mapping on distributed plans).
pub(crate) fn build_plan(
    cfg: &FactorConfig,
    snapshot: &RankSnapshot,
    dist: Option<DistPlanInputs<'_>>,
) -> Result<SymbolicPlan, EngineError> {
    let t0 = std::time::Instant::now();
    let key = plan_key(cfg, snapshot, dist.as_ref());
    let nt = snapshot.nt();
    let dag = build_cholesky_dag(
        snapshot,
        &DagConfig {
            trimmed: cfg.trimmed,
            rank_cap: cfg.max_rank,
        },
    );
    let (sched, batch, dist) = match dist {
        None => {
            let batch = cfg.batch_panels.then(|| batch_panel_gemms(&dag, None));
            // The scheduler runs over the graph the engine sees: the
            // contracted batch graph when batching is on.
            let sched = match &batch {
                Some(pb) => SchedPlan::build(&pb.graph, cfg.sched)?,
                None => SchedPlan::build(&dag.graph, cfg.sched)?,
            };
            (Some(sched), batch, None)
        }
        Some(d) => {
            let mut base_owner = vec![0usize; nt * (nt + 1) / 2];
            for i in 0..nt {
                for j in 0..=i {
                    base_owner[lower(i, j)] = d.exec.owner(i, j).min(d.nprocs - 1);
                }
            }
            let mut preds: Vec<Vec<(TaskId, DataRef)>> = vec![Vec::new(); dag.graph.len()];
            for src in 0..dag.graph.len() {
                for e in dag.graph.successors(src) {
                    preds[e.dst].push((src, e.data));
                }
            }
            let mut first_writer: HashMap<(usize, usize), TaskId> = HashMap::new();
            let mut last_writer: HashMap<(usize, usize), TaskId> = HashMap::new();
            for t in 0..dag.graph.len() {
                let w = dag
                    .graph
                    .spec(t)
                    .writes
                    .expect("every Cholesky task writes its tile");
                first_writer.entry((w.i, w.j)).or_insert(t);
                last_writer.insert((w.i, w.j), t);
            }
            // Batching composes with plain distributed runs only: fault
            // recovery, integrity healing and the virtual-time trace all
            // reason about single-tile tasks.
            let batchable = cfg.batch_panels && !d.ft && !d.verify && !d.trace;
            let ds = DistStatic {
                nprocs: d.nprocs,
                base_owner,
                preds,
                first_writer,
                last_writer,
                batchable,
                replan: d
                    .replan_slack
                    .map(|s| Mutex::new(CommReplanner::with_slack(d.nprocs, s))),
                mapping: RwLock::new(DistMapping {
                    overrides: HashMap::new(),
                    exec_rank: Vec::new(),
                    placement: HashMap::new(),
                    order: Vec::new(),
                    batch: None,
                }),
            };
            let mapping = ds.derive_mapping(&dag, nt, cfg.sched, d.overrides)?;
            *ds.mapping.write() = mapping;
            (None, None, Some(ds))
        }
    };
    Ok(SymbolicPlan {
        key,
        nt,
        dag,
        sched,
        batch,
        dist,
        planning_seconds: t0.elapsed().as_secs_f64(),
    })
}

/// Cache-activity delta of one plan acquisition, recorded into the run's
/// metrics registry (`plan_cache_hits` / `plan_cache_misses` /
/// `plan_cache_evictions`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheEvents {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// A keyed, LRU-evicting cache of [`SymbolicPlan`]s.
///
/// Safe to share across threads and sessions (the
/// [`SolveService`](crate::service::SolveService) holds one for all
/// tenants): lookups hand out `Arc` clones, hit/miss/eviction totals are
/// relaxed atomics, and the LRU list sits behind a mutex that is only
/// held for the (cheap) key comparison — plan *building* happens outside
/// the lock. Two threads racing on the same cold key may both build; the
/// second insert wins and the loser's plan simply drops, which is
/// correct because equal keys build identical plans.
pub struct PlanCache {
    cap: usize,
    /// Front = most recently used.
    inner: Mutex<Vec<(PlanKey, Arc<SymbolicPlan>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (at least 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            cap: capacity.max(1),
            inner: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Plans currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups that built a plan.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Look up a plan, marking it most-recently-used.
    pub fn lookup(&self, key: &PlanKey) -> Option<Arc<SymbolicPlan>> {
        let mut inner = self.inner.lock();
        if let Some(pos) = inner.iter().position(|(k, _)| k == key) {
            let entry = inner.remove(pos);
            let plan = entry.1.clone();
            inner.insert(0, entry);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(plan)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Insert a plan, evicting least-recently-used entries beyond
    /// capacity. Returns how many entries were evicted.
    pub fn insert(&self, plan: Arc<SymbolicPlan>) -> u64 {
        let mut inner = self.inner.lock();
        inner.retain(|(k, _)| k != &plan.key);
        inner.insert(0, (plan.key, plan));
        let mut evicted = 0u64;
        while inner.len() > self.cap {
            inner.pop();
            evicted += 1;
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Look up `key` or build-and-insert via `build`, reporting the
    /// cache activity of this acquisition.
    pub fn get_or_build<E>(
        &self,
        key: &PlanKey,
        build: impl FnOnce() -> Result<SymbolicPlan, E>,
    ) -> Result<(Arc<SymbolicPlan>, CacheEvents), E> {
        if let Some(plan) = self.lookup(key) {
            return Ok((
                plan,
                CacheEvents {
                    hits: 1,
                    ..CacheEvents::default()
                },
            ));
        }
        let plan = Arc::new(build()?);
        let evictions = self.insert(plan.clone());
        Ok((
            plan,
            CacheEvents {
                hits: 0,
                misses: 1,
                evictions,
            },
        ))
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("cap", &self.cap)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

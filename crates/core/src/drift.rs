//! Cost-model drift reports: measured execution vs the analytical model.
//!
//! The scheduler prices tasks with [`CostModel`] (machine peak ×
//! rank-dependent efficiency) and the re-planner prices communication
//! with [`modeled_comm`](crate::replan::modeled_comm). Both models are
//! calibrated once against published machine numbers — nothing checks
//! them against the run that actually happened. A [`DriftReport`] closes
//! that loop: after any [`Session`](crate::session::Session) run with
//! [`collect_metrics`](crate::factorize::FactorConfig::collect_metrics)
//! on, attach a [`DriftSpec`] and the outcome carries per-kernel-class
//! modeled-vs-measured busy time, the drift ratio, the lookahead
//! scheduler's own EMA correction for that class (PR 7's calibration
//! state, now inspectable instead of sealed inside the scheduler), and
//! an anomaly flag for ratios outside a configurable band. Distributed
//! runs additionally compare the exact comm model against the traffic
//! the engine measured — equal on a fault-free run, drifting apart under
//! retransmissions.
//!
//! The report is diagnostic, not normative: shared-memory runs measure
//! wall-clock seconds against a supercomputer-calibrated model, so the
//! interesting signal is the *relative* drift between classes (is GEMM
//! mispriced relative to POTRF?) and run-over-run movement tracked by
//! `bench_history`, not the absolute ratio.

use runtime::des::CommStats;
use runtime::graph::{TaskClass, TaskGraph};
use runtime::machine::MachineModel;
use runtime::obs::json::Json;
use runtime::obs::registry::{class_name, class_slot, RegistrySnapshot, NCLASSES};
use runtime::scheduler::{CostModel, RankProfile};
use std::fmt;

/// How a run's drift report is computed.
#[derive(Debug, Clone)]
pub struct DriftSpec {
    /// Machine model pricing the per-class durations (and, through
    /// [`CostModel`], the rank-dependent low-rank efficiency).
    pub machine: MachineModel,
    /// Anomaly band: a class whose measured/modeled ratio falls outside
    /// `[1/band, band]` is flagged. Must be `> 1`; the default is 8
    /// (wall-clock on a laptop vs a supercomputer model drifts by small
    /// constant factors — flag only order-of-magnitude surprises).
    pub band: f64,
    /// Rank the cost model prices low-rank updates at. `None` derives it
    /// from the run's recompression-rank histogram when the registry
    /// captured one, falling back to 16.
    pub fallback_rank: Option<usize>,
}

impl DriftSpec {
    /// A spec on the given machine with the default band and derived rank.
    pub fn new(machine: MachineModel) -> Self {
        DriftSpec {
            machine,
            band: 8.0,
            fallback_rank: None,
        }
    }
}

/// Modeled vs measured accounting of one kernel class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDrift {
    /// Class name (`"potrf"`, `"trsm"`, `"syrk"`, `"gemm"`, `"other"`).
    pub class: &'static str,
    /// Tasks of this class in the executed DAG (model-side count; a
    /// panel-batched run retires fused tasks, so the registry's own task
    /// count can be smaller).
    pub modeled_tasks: u64,
    /// Model-priced busy seconds summed over the class's tasks.
    pub modeled_seconds: f64,
    /// Busy seconds the registry measured for the class (wall-clock on
    /// shared-memory runs, virtual time on DES runs).
    pub measured_seconds: f64,
    /// `measured_seconds / modeled_seconds`; `0.0` when the class has no
    /// modeled work (never `NaN`/`Inf`).
    pub ratio: f64,
    /// The lookahead scheduler's EMA duration correction for this class
    /// at end of run (`1.0` when the run used a static policy).
    pub correction: f64,
    /// Ratio fell outside the spec's `[1/band, band]`.
    pub anomalous: bool,
}

/// Modeled vs measured cross-rank traffic of a distributed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommDrift {
    /// Exact fault-free model: one message of `edge.bytes` per
    /// cross-rank dataflow edge of the final task→rank mapping.
    pub modeled: CommStats,
    /// What the engine counted, retransmissions included.
    pub measured: CommStats,
    /// `measured.bytes / modeled.bytes` (`0.0` when nothing modeled).
    pub bytes_ratio: f64,
    /// `measured.messages / modeled.messages` (`0.0` when none modeled).
    pub messages_ratio: f64,
    /// Either ratio fell outside the spec's `[1/band, band]`.
    pub anomalous: bool,
}

/// Per-class (and, on distributed runs, per-wire) drift between the
/// analytical cost model and a measured run. Built by
/// [`Session::with_drift`](crate::session::Session::with_drift).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Name of the machine model the prediction used.
    pub machine: String,
    /// Anomaly band the flags were computed with.
    pub band: f64,
    /// Rank the cost model priced low-rank updates at.
    pub expected_rank: usize,
    /// One entry per kernel class, fixed order potrf/trsm/syrk/gemm/other.
    pub classes: Vec<ClassDrift>,
    /// Total model flops of the executed DAG.
    pub modeled_flops: f64,
    /// Communication drift (distributed runs only).
    pub comm: Option<CommDrift>,
}

fn ratio(measured: f64, modeled: f64) -> f64 {
    if modeled > 0.0 && measured.is_finite() && measured >= 0.0 {
        measured / modeled
    } else {
        0.0
    }
}

fn out_of_band(r: f64, band: f64) -> bool {
    r > 0.0 && (r > band || r < 1.0 / band)
}

impl DriftReport {
    /// Build a report from the executed graph, the run's merged registry
    /// snapshot, and (on distributed runs) the final task→rank mapping
    /// plus measured traffic.
    pub fn compute(
        spec: &DriftSpec,
        graph: &TaskGraph,
        snapshot: &RegistrySnapshot,
        comm: Option<(&[usize], CommStats)>,
    ) -> DriftReport {
        let band = if spec.band > 1.0 { spec.band } else { 8.0 };
        // Price low-rank updates at the run's own mean recompression
        // rank when the registry captured one, else the spec's fallback.
        let profile = if snapshot.recompression_ranks.count > 0 {
            let counts: Vec<u64> = snapshot
                .recompression_ranks
                .buckets
                .iter()
                .flat_map(|&(bound, n)| (n > 0).then_some((bound, n)))
                .fold(Vec::new(), |mut h, (bound, n)| {
                    let r = bound as usize;
                    if h.len() <= r {
                        h.resize(r + 1, 0);
                    }
                    h[r] += n;
                    h
                });
            RankProfile::from_histogram(&counts, spec.fallback_rank.unwrap_or(16))
        } else {
            RankProfile::uniform(spec.fallback_rank.unwrap_or(16))
        };
        let model = CostModel::from_machine(&spec.machine, &profile);
        let mut modeled = [0.0f64; NCLASSES];
        let mut tasks = [0u64; NCLASSES];
        let mut flops = 0.0;
        for t in 0..graph.len() {
            let s = graph.spec(t);
            let k = class_slot(s.class);
            modeled[k] += model.task_cost(s);
            tasks[k] += 1;
            flops += s.flops;
        }
        let corrections = snapshot.corrections();
        let classes = (0..NCLASSES)
            .map(|k| {
                let class = [
                    TaskClass::Potrf,
                    TaskClass::Trsm,
                    TaskClass::Syrk,
                    TaskClass::Gemm,
                    TaskClass::Other,
                ][k];
                let measured = snapshot.class_seconds(class);
                let r = ratio(measured, modeled[k]);
                ClassDrift {
                    class: class_name(k),
                    modeled_tasks: tasks[k],
                    modeled_seconds: modeled[k],
                    measured_seconds: measured,
                    ratio: r,
                    correction: corrections[k],
                    anomalous: out_of_band(r, band),
                }
            })
            .collect();
        let comm = comm.map(|(exec_rank, measured)| {
            let modeled = crate::replan::modeled_comm(graph, exec_rank);
            let br = ratio(measured.bytes as f64, modeled.bytes as f64);
            let mr = ratio(measured.messages as f64, modeled.messages as f64);
            CommDrift {
                modeled,
                measured,
                bytes_ratio: br,
                messages_ratio: mr,
                anomalous: out_of_band(br, band) || out_of_band(mr, band),
            }
        });
        DriftReport {
            machine: spec.machine.name.clone(),
            band,
            expected_rank: model.expected_rank(),
            classes,
            modeled_flops: flops,
            comm,
        }
    }

    /// Any class (or the wire) drifted outside the band.
    pub fn any_anomalous(&self) -> bool {
        self.classes.iter().any(|c| c.anomalous)
            || self.comm.is_some_and(|c| c.anomalous)
    }

    /// The report as a [`Json`] tree (for `METRICS_*.json` dumps).
    pub fn to_json(&self) -> Json {
        let mut root = Json::obj();
        root.insert("machine", Json::Str(self.machine.clone()));
        root.insert("band", Json::Num(self.band));
        root.insert("expected_rank", Json::Num(self.expected_rank as f64));
        root.insert("modeled_flops", Json::Num(self.modeled_flops));
        let classes = self
            .classes
            .iter()
            .map(|c| {
                let mut o = Json::obj();
                o.insert("class", Json::Str(c.class.to_string()));
                o.insert("modeled_tasks", Json::Num(c.modeled_tasks as f64));
                o.insert("modeled_seconds", Json::Num(c.modeled_seconds));
                o.insert("measured_seconds", Json::Num(c.measured_seconds));
                o.insert("ratio", Json::Num(c.ratio));
                o.insert("correction", Json::Num(c.correction));
                o.insert("anomalous", Json::Bool(c.anomalous));
                o
            })
            .collect();
        root.insert("classes", Json::Arr(classes));
        if let Some(c) = &self.comm {
            let mut o = Json::obj();
            o.insert("modeled_bytes", Json::Num(c.modeled.bytes as f64));
            o.insert("modeled_messages", Json::Num(c.modeled.messages as f64));
            o.insert("measured_bytes", Json::Num(c.measured.bytes as f64));
            o.insert("measured_messages", Json::Num(c.measured.messages as f64));
            o.insert("bytes_ratio", Json::Num(c.bytes_ratio));
            o.insert("messages_ratio", Json::Num(c.messages_ratio));
            o.insert("anomalous", Json::Bool(c.anomalous));
            root.insert("comm", o);
        }
        root
    }

    /// Prometheus text exposition of the drift ratios and flags.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE tlr_drift_ratio gauge\n");
        for c in &self.classes {
            out.push_str(&format!(
                "tlr_drift_ratio{{class=\"{}\"}} {}\n",
                c.class, c.ratio
            ));
        }
        out.push_str("# TYPE tlr_drift_correction gauge\n");
        for c in &self.classes {
            out.push_str(&format!(
                "tlr_drift_correction{{class=\"{}\"}} {}\n",
                c.class, c.correction
            ));
        }
        out.push_str("# TYPE tlr_drift_anomalous gauge\n");
        for c in &self.classes {
            out.push_str(&format!(
                "tlr_drift_anomalous{{class=\"{}\"}} {}\n",
                c.class,
                u8::from(c.anomalous)
            ));
        }
        if let Some(c) = &self.comm {
            out.push_str("# TYPE tlr_drift_comm_ratio gauge\n");
            out.push_str(&format!(
                "tlr_drift_comm_ratio{{kind=\"bytes\"}} {}\n",
                c.bytes_ratio
            ));
            out.push_str(&format!(
                "tlr_drift_comm_ratio{{kind=\"messages\"}} {}\n",
                c.messages_ratio
            ));
        }
        out
    }
}

impl fmt::Display for DriftReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cost-model drift vs {} (rank {}, band {:.1}x)",
            self.machine, self.expected_rank, self.band
        )?;
        writeln!(
            f,
            "{:>6} {:>8} {:>14} {:>14} {:>9} {:>9}  flag",
            "class", "tasks", "modeled_s", "measured_s", "ratio", "corr"
        )?;
        for c in &self.classes {
            if c.modeled_tasks == 0 && c.measured_seconds == 0.0 {
                continue;
            }
            writeln!(
                f,
                "{:>6} {:>8} {:>14.6e} {:>14.6e} {:>9.3} {:>9.3}  {}",
                c.class,
                c.modeled_tasks,
                c.modeled_seconds,
                c.measured_seconds,
                c.ratio,
                c.correction,
                if c.anomalous { "ANOMALOUS" } else { "ok" }
            )?;
        }
        if let Some(c) = &self.comm {
            writeln!(
                f,
                "  comm: modeled {} B / {} msgs, measured {} B / {} msgs (x{:.3} / x{:.3}){}",
                c.modeled.bytes,
                c.modeled.messages,
                c.measured.bytes,
                c.measured.messages,
                c.bytes_ratio,
                c.messages_ratio,
                if c.anomalous { " ANOMALOUS" } else { "" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::graph::{DataRef, TaskSpec};

    fn graph_with(classes: &[(TaskClass, f64)]) -> TaskGraph {
        let mut g = TaskGraph::new();
        for &(class, flops) in classes {
            g.add_task(TaskSpec {
                class,
                priority: 0,
                writes: Some(DataRef { i: 0, j: 0 }),
                flops,
            });
        }
        g
    }

    #[test]
    fn empty_snapshot_yields_zero_ratios_not_nan() {
        let g = graph_with(&[(TaskClass::Potrf, 1e6), (TaskClass::Gemm, 1e7)]);
        let spec = DriftSpec::new(MachineModel::shaheen_ii());
        let rep = DriftReport::compute(&spec, &g, &RegistrySnapshot::default(), None);
        assert_eq!(rep.classes.len(), 5);
        for c in &rep.classes {
            assert!(c.ratio.is_finite(), "{}: {}", c.class, c.ratio);
            assert!(!c.anomalous, "zero measurement must not flag");
            assert_eq!(c.correction, 1.0);
        }
        assert!(rep.modeled_flops > 0.0);
        assert!(rep.classes[0].modeled_seconds > 0.0);
        let js = rep.to_json().to_string();
        assert!(js.contains("\"modeled_flops\""));
        assert!(!js.contains("NaN"));
    }

    #[test]
    fn band_flags_order_of_magnitude_drift() {
        assert!(out_of_band(10.0, 8.0));
        assert!(out_of_band(0.05, 8.0));
        assert!(!out_of_band(2.0, 8.0));
        assert!(!out_of_band(0.0, 8.0), "no-data ratio never flags");
    }

    #[test]
    fn comm_drift_is_exact_on_matching_model() {
        let mut g = graph_with(&[(TaskClass::Potrf, 1e6), (TaskClass::Trsm, 1e6)]);
        g.add_edge(0, 1, DataRef { i: 0, j: 0 }, 800);
        let exec_rank = vec![0usize, 1usize];
        let measured = crate::replan::modeled_comm(&g, &exec_rank);
        let spec = DriftSpec::new(MachineModel::fugaku());
        let rep = DriftReport::compute(
            &spec,
            &g,
            &RegistrySnapshot::default(),
            Some((&exec_rank, measured)),
        );
        let c = rep.comm.expect("comm drift requested");
        assert_eq!(c.modeled, c.measured);
        assert_eq!(c.bytes_ratio, 1.0);
        assert_eq!(c.messages_ratio, 1.0);
        assert!(!c.anomalous);
        let text = rep.to_string();
        assert!(text.contains("comm:"), "{text}");
        let prom = rep.to_prometheus();
        assert!(prom.contains("tlr_drift_comm_ratio{kind=\"bytes\"} 1"));
    }
}

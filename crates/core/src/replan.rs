//! Comm-avoiding re-planning: feed a completed run's measured
//! communication back into the next run's tile placement.
//!
//! The paper's distributions (band/diamond/Lorapo/2D-block-cyclic) are
//! static: the mapping is fixed before rank structure is known. But the
//! RBF mesh-deformation workload solves on the *same geometry* many
//! times, and after the first factorization the DAG — which tiles talk
//! to which, and how many bytes each edge really carries after
//! compression — is fully known. [`CommReplanner`] exploits that: after
//! every distributed run it rebuilds a tile-level communication graph
//! from the DAG and the mapping the run actually used, then greedily
//! migrates whole tile write-chains between ranks wherever that strictly
//! reduces modeled cross-rank traffic without unbalancing compute beyond
//! a slack factor. The proposal drives the next run through per-tile
//! rank overrides ([`Session::with_replanner`]); moving *all* writers of
//! a tile together preserves the engine's writers-co-located placement
//! invariant by construction, so the factor stays bit-identical — only
//! the traffic changes.
//!
//! The model is exact, not heuristic: on a fault-free run the
//! distributed engine sends exactly one message of `edge.bytes` per
//! cross-rank dataflow edge, which is precisely what [`modeled_comm`]
//! counts (the tests pin this equality). Measured feedback still gates
//! every step — if a proposal ever measures *worse* (e.g. under a fault
//! plan whose retransmissions distort volume), the replanner reverts to
//! the best mapping seen and converges there, so repeated solves never
//! regress.
//!
//! [`Session::with_replanner`]: crate::session::Session::with_replanner

use runtime::des::CommStats;
use runtime::graph::TaskGraph;
use std::collections::HashMap;

/// Modeled communication of executing `graph` under the task→rank
/// mapping `exec_rank`: one message of `edge.bytes` per dataflow edge
/// whose producer and consumer ranks differ. This is exactly the
/// fault-free accounting of the distributed engine, so on a clean run
/// it equals the measured [`CommStats`] bit for bit.
pub fn modeled_comm(graph: &TaskGraph, exec_rank: &[usize]) -> CommStats {
    let mut bytes = 0u64;
    let mut messages = 0u64;
    for src in 0..graph.len() {
        for e in graph.successors(src) {
            if exec_rank[src] != exec_rank[e.dst] {
                bytes += e.bytes;
                messages += 1;
            }
        }
    }
    CommStats { bytes, messages }
}

/// Greedy comm-feedback re-planner for repeated distributed solves on
/// one geometry. Attach to a session with
/// [`Session::with_replanner`](crate::session::Session::with_replanner);
/// each completed run calls [`observe`](CommReplanner::observe), which
/// accepts or reverts the last proposal on *measured* traffic and then
/// hill-climbs the tile→rank mapping on the exact comm model.
#[derive(Debug, Clone)]
pub struct CommReplanner {
    nprocs: usize,
    /// Allowed compute imbalance: a rank may carry up to
    /// `(1 + slack) · total_flops / nprocs`.
    slack: f64,
    overrides: HashMap<(usize, usize), usize>,
    /// The last mapping whose measured traffic was accepted.
    accepted: HashMap<(usize, usize), usize>,
    best_bytes: Option<u64>,
    rounds: usize,
    converged: bool,
}

impl CommReplanner {
    /// A re-planner for `nprocs` ranks with the default 20 % compute
    /// imbalance slack.
    pub fn new(nprocs: usize) -> Self {
        Self::with_slack(nprocs, 0.2)
    }

    /// A re-planner with an explicit imbalance slack (`0.0` forbids any
    /// move that pushes a rank above the perfectly balanced load).
    pub fn with_slack(nprocs: usize, slack: f64) -> Self {
        CommReplanner {
            nprocs: nprocs.max(1),
            slack: slack.max(0.0),
            overrides: HashMap::new(),
            accepted: HashMap::new(),
            best_bytes: None,
            rounds: 0,
            converged: false,
        }
    }

    /// The per-tile rank overrides the *next* run should plan with.
    pub fn overrides(&self) -> &HashMap<(usize, usize), usize> {
        &self.overrides
    }

    /// Completed observe/propose rounds so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Whether the replanner has stopped proposing (no improving move
    /// left, or a proposal measured worse and was rolled back).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Smallest measured cross-rank byte volume accepted so far.
    pub fn best_bytes(&self) -> Option<u64> {
        self.best_bytes
    }

    /// Feed back one completed run: `graph`/`exec_rank` are the DAG and
    /// mapping the run planned with, `measured` its counted traffic.
    ///
    /// If the run measured worse than the best accepted mapping, the
    /// proposal that produced it is discarded and the best mapping is
    /// restored — the next run can therefore never exceed a volume
    /// already measured. Otherwise the mapping is accepted and a new
    /// proposal is hill-climbed from it.
    pub fn observe(&mut self, graph: &TaskGraph, exec_rank: &[usize], measured: &CommStats) {
        self.rounds += 1;
        if let Some(best) = self.best_bytes {
            if measured.bytes > best {
                // The proposal regressed on real traffic: roll back and
                // stop — re-proposing from the same model would just
                // reproduce the same rejected move.
                self.overrides = self.accepted.clone();
                self.converged = true;
                return;
            }
        }
        self.best_bytes = Some(measured.bytes);
        self.accepted = self.overrides.clone();
        if self.converged {
            return;
        }
        if !self.propose(graph, exec_rank) {
            self.converged = true;
        }
    }

    /// Hill-climb whole-tile migrations on the exact comm model.
    /// Returns whether any improving move was found.
    fn propose(&mut self, graph: &TaskGraph, exec_rank: &[usize]) -> bool {
        let n = graph.len();
        // Group tasks by written tile; writers share a rank by the
        // placement invariant, so the group rank is any writer's rank.
        let mut tiles: Vec<(usize, usize)> = Vec::new();
        let mut tile_idx: HashMap<(usize, usize), usize> = HashMap::new();
        let mut tile_of_task = vec![usize::MAX; n];
        let mut rank = Vec::new();
        let mut load = vec![0.0f64; self.nprocs];
        for t in 0..n {
            let w = graph
                .spec(t)
                .writes
                .expect("every Cholesky task writes its tile");
            let key = (w.i, w.j);
            let u = *tile_idx.entry(key).or_insert_with(|| {
                tiles.push(key);
                rank.push(exec_rank[t]);
                tiles.len() - 1
            });
            tile_of_task[t] = u;
            load[rank[u]] += graph.spec(t).flops;
        }
        // Tile-level traffic: adjacency with summed edge bytes. Edges
        // inside one tile's write-chain are always local and drop out.
        let ntiles = tiles.len();
        let mut adj: Vec<HashMap<usize, u64>> = vec![HashMap::new(); ntiles];
        for src in 0..n {
            let u = tile_of_task[src];
            for e in graph.successors(src) {
                let v = tile_of_task[e.dst];
                if u != v && e.bytes > 0 {
                    *adj[u].entry(v).or_insert(0) += e.bytes;
                    *adj[v].entry(u).or_insert(0) += e.bytes;
                }
            }
        }
        let total: f64 = load.iter().sum();
        let cap = (1.0 + self.slack) * total / self.nprocs as f64;
        let tile_flops: Vec<f64> = {
            let mut f = vec![0.0; ntiles];
            for t in 0..n {
                f[tile_of_task[t]] += graph.spec(t).flops;
            }
            f
        };

        let mut improved = false;
        // Each applied move strictly decreases modeled cross bytes, so
        // the loop terminates; the pass bound keeps worst cases linear.
        for _pass in 0..4 {
            let mut moved = false;
            for u in 0..ntiles {
                let cur = rank[u];
                // Cross bytes incident to `u` per candidate rank.
                let mut cross: Vec<u64> = vec![0; self.nprocs];
                let mut incident = 0u64;
                for (&v, &b) in &adj[u] {
                    incident += b;
                    cross[rank[v]] += b;
                }
                if incident == 0 {
                    continue;
                }
                // At rank r the tile pays `incident - cross[r]`.
                let mut best_r = cur;
                let mut best_cost = incident - cross[cur];
                for r in 0..self.nprocs {
                    if r == cur {
                        continue;
                    }
                    let cost = incident - cross[r];
                    if cost < best_cost && load[r] + tile_flops[u] <= cap {
                        best_cost = cost;
                        best_r = r;
                    }
                }
                if best_r != cur {
                    load[cur] -= tile_flops[u];
                    load[best_r] += tile_flops[u];
                    rank[u] = best_r;
                    moved = true;
                    improved = true;
                }
            }
            if !moved {
                break;
            }
        }
        if improved {
            self.overrides = tiles
                .iter()
                .zip(&rank)
                .map(|(&(i, j), &r)| ((i, j), r))
                .collect();
        }
        improved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::plan_distribution;
    use crate::factorize::{factorize, FactorConfig};
    use crate::session::Session;
    use distribution::TwoDBlockCyclic;
    use std::cell::RefCell;
    use tlr_compress::{CompressionConfig, TlrMatrix};
    use tlr_linalg::norms::relative_diff;
    use tlr_linalg::Matrix;

    fn gaussian_dense(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64) / (n as f64 / 8.0);
            let v = (-d * d).exp();
            if i == j {
                v + 1e-3
            } else {
                v
            }
        })
    }

    /// The model is the engine: on a fault-free run the measured
    /// cross-rank traffic equals [`modeled_comm`] on the planned
    /// mapping, byte for byte and message for message.
    #[test]
    fn model_matches_measured_distengine_comm() {
        let n = 120;
        let b = 24;
        let acc = 1e-8;
        let dense = gaussian_dense(n);
        let ccfg = CompressionConfig::with_accuracy(acc);
        let fcfg = FactorConfig::with_accuracy(acc);
        let dist = TwoDBlockCyclic::new(4);

        let for_plan = TlrMatrix::from_dense(&dense, b, &ccfg);
        let plan = plan_distribution(&for_plan, &fcfg, 4, &dist);
        let modeled = modeled_comm(&plan.dag.graph, &plan.exec_rank);

        let mut m = TlrMatrix::from_dense(&dense, b, &ccfg);
        let measured = Session::distributed(fcfg, 4, &dist)
            .run(&mut m)
            .unwrap()
            .comm
            .unwrap();
        assert_eq!(measured.bytes, modeled.bytes);
        assert_eq!(measured.messages, modeled.messages);
    }

    /// Repeated solves on one geometry: traffic never increases round
    /// over round, strictly drops from the static baseline, and the
    /// factor stays bit-identical to the shared-memory run throughout.
    /// (Exercises the deprecated external-`RefCell` path, kept working
    /// as a shim over transient plans.)
    #[test]
    #[allow(deprecated)]
    fn replanner_reduces_comm_and_preserves_the_factor() {
        let n = 120;
        let b = 24;
        let acc = 1e-8;
        let dense = gaussian_dense(n);
        let ccfg = CompressionConfig::with_accuracy(acc);
        let fcfg = FactorConfig::with_accuracy(acc);
        let dist = TwoDBlockCyclic::new(4);

        let mut reference = TlrMatrix::from_dense(&dense, b, &ccfg);
        factorize(&mut reference, &fcfg).unwrap();
        let l_ref = reference.to_dense_lower();

        let replan = RefCell::new(CommReplanner::new(4));
        let session = Session::distributed(fcfg, 4, &dist).with_replanner(&replan);
        let mut bytes = Vec::new();
        for _round in 0..3 {
            let mut m = TlrMatrix::from_dense(&dense, b, &ccfg);
            let out = session.run(&mut m).unwrap();
            bytes.push(out.comm.unwrap().bytes);
            assert_eq!(
                relative_diff(&m.to_dense_lower(), &l_ref),
                0.0,
                "replanned factor must stay bit-identical"
            );
        }
        for w in bytes.windows(2) {
            assert!(w[1] <= w[0], "comm volume regressed: {bytes:?}");
        }
        assert!(
            bytes.last().unwrap() < &bytes[0],
            "replanner found no improvement over the static mapping: {bytes:?}"
        );
    }

    /// The embedded re-planner (`with_replanning`) through a shared
    /// `PlanCache`: the converged overrides live *in the cached plan*,
    /// so every round after the first is a cache hit, traffic improves
    /// exactly as with the external-`RefCell` re-planner, and the factor
    /// stays bit-identical to the shared-memory reference.
    #[test]
    fn embedded_replanner_persists_overrides_through_the_plan_cache() {
        let n = 120;
        let b = 24;
        let acc = 1e-8;
        let dense = gaussian_dense(n);
        let ccfg = CompressionConfig::with_accuracy(acc);
        let fcfg = FactorConfig::with_accuracy(acc);
        let dist = TwoDBlockCyclic::new(4);

        let mut reference = TlrMatrix::from_dense(&dense, b, &ccfg);
        factorize(&mut reference, &fcfg).unwrap();
        let l_ref = reference.to_dense_lower();

        let cache = crate::plan::PlanCache::new(4);
        let session = Session::distributed(fcfg, 4, &dist)
            .with_replanning(0.2)
            .with_plan_cache(&cache);
        let mut bytes = Vec::new();
        for _round in 0..3 {
            let mut m = TlrMatrix::from_dense(&dense, b, &ccfg);
            let out = session.run(&mut m).unwrap();
            bytes.push(out.comm.unwrap().bytes);
            assert_eq!(
                relative_diff(&m.to_dense_lower(), &l_ref),
                0.0,
                "replanned factor must stay bit-identical"
            );
        }
        // One plan built, then hits whose refreshed mapping carries the
        // re-planner's accepted overrides forward.
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        for w in bytes.windows(2) {
            assert!(w[1] <= w[0], "comm volume regressed: {bytes:?}");
        }
        assert!(
            bytes.last().unwrap() < &bytes[0],
            "embedded replanner found no improvement over the static mapping: {bytes:?}"
        );
    }

    /// The measured-feedback gate: a round that measures worse than the
    /// best accepted volume rolls the proposal back and converges.
    #[test]
    fn worse_measurement_reverts_the_proposal() {
        let n = 96;
        let b = 24;
        let acc = 1e-8;
        let dense = gaussian_dense(n);
        let ccfg = CompressionConfig::with_accuracy(acc);
        let fcfg = FactorConfig::with_accuracy(acc);
        let dist = TwoDBlockCyclic::new(4);
        let m = TlrMatrix::from_dense(&dense, b, &ccfg);
        let plan = plan_distribution(&m, &fcfg, 4, &dist);

        let mut r = CommReplanner::new(4);
        let base = modeled_comm(&plan.dag.graph, &plan.exec_rank);
        r.observe(&plan.dag.graph, &plan.exec_rank, &base);
        assert!(!r.overrides().is_empty(), "a proposal must exist");
        let proposed = r.overrides().clone();

        // Pretend the proposal measured catastrophically worse.
        let worse = CommStats {
            bytes: base.bytes * 2 + 1,
            messages: base.messages,
        };
        r.observe(&plan.dag.graph, &plan.exec_rank, &worse);
        assert_ne!(r.overrides(), &proposed, "the bad proposal must be dropped");
        assert!(r.converged(), "a rejected proposal ends the search");
        assert_eq!(r.best_bytes(), Some(base.bytes));
    }
}

//! Tile Cholesky task-graph construction, with and without DAG trimming.
//!
//! The builder unrolls the classic right-looking tile Cholesky PTG:
//!
//! ```text
//! for k in 0..NT:
//!     POTRF(k)                     on (k,k)
//!     for m in k+1..NT:  TRSM(k,m) on (m,k)   ← bcast of (k,k)
//!     for m in k+1..NT:  SYRK(k,m) on (m,m)   ← (m,k)
//!     for n in k+1..NT, m in n+1..NT:
//!                        GEMM(k,m,n) on (m,n) ← (m,k), (n,k)
//! ```
//!
//! With `trimmed = false` every task of the dense execution space is
//! materialized (tasks on null tiles become numeric no-ops but still cost
//! runtime overhead and dependency activations — the situation the paper's
//! §VI fixes). With `trimmed = true` the execution space of TRSM, SYRK
//! and GEMM is reduced according to [`MatrixAnalysis`] (Algorithm 1), so
//! tasks and dependencies touching never-non-null tiles are simply never
//! created.
//!
//! Every task carries its flop count (priced from the analysis' evolved
//! rank estimates) and every edge the payload bytes of the tile version
//! flowing along it, so the same graph drives both the shared-memory
//! executor and the distributed discrete-event simulator.

use crate::analysis::MatrixAnalysis;
use runtime::graph::{DataRef, TaskClass, TaskGraph, TaskId, TaskSpec};
use tlr_compress::kernels::flops;
use tlr_compress::RankSnapshot;

/// Identity of a Cholesky task (the PTG parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Factor diagonal tile `(k, k)`.
    Potrf {
        /// Panel index.
        k: usize,
    },
    /// Solve tile `(m, k)` against the factored `(k, k)`.
    Trsm {
        /// Panel index.
        k: usize,
        /// Tile row.
        m: usize,
    },
    /// Update diagonal `(m, m)` with panel-`k` tile `(m, k)`.
    Syrk {
        /// Panel index.
        k: usize,
        /// Diagonal index.
        m: usize,
    },
    /// Update `(m, n)` with `(m, k)·(n, k)ᵀ`.
    Gemm {
        /// Panel index.
        k: usize,
        /// Tile row.
        m: usize,
        /// Tile column.
        n: usize,
    },
}

/// Builder options.
#[derive(Debug, Clone, Copy)]
pub struct DagConfig {
    /// Apply Algorithm-1 trimming (skip tasks on never-non-null tiles).
    pub trimmed: bool,
    /// Cap on fill-in rank estimates (HiCMA `maxrank`).
    pub rank_cap: usize,
}

impl Default for DagConfig {
    fn default() -> Self {
        Self { trimmed: true, rank_cap: usize::MAX }
    }
}

/// A fully built Cholesky DAG plus per-task metadata.
pub struct CholeskyDag {
    /// The dataflow graph (tasks + byte-annotated edges).
    pub graph: TaskGraph,
    /// `kinds[id]` identifies the Cholesky task behind graph vertex `id`.
    pub kinds: Vec<TaskKind>,
    /// The symbolic analysis the graph was built from.
    pub analysis: MatrixAnalysis,
    /// Per-task flop counts.
    pub flops: Vec<f64>,
    /// Per-task effective inner (rank) dimension, the argument of the
    /// machine model's efficiency curve (tile size for dense kernels).
    pub rank_param: Vec<usize>,
    /// Per-task "nested" flag: critical-path kernels execute
    /// node-parallel (the nested-parallelism optimization of the
    /// IPDPS'21 predecessor the paper builds on).
    pub nested: Vec<bool>,
}

/// Is a rank-`r` tile of size `b` stored dense (LR does not pay off)?
#[inline]
fn dense_format(r: usize, b: usize) -> bool {
    2 * r >= b
}

/// Message size of tile `(i, j)` with rank estimate `r`, in bytes.
#[inline]
fn tile_bytes(i: usize, j: usize, r: usize, b: usize) -> u64 {
    if i == j || dense_format(r, b) {
        (b * b * 8) as u64
    } else if r == 0 {
        0
    } else {
        (8 * r * 2 * b) as u64
    }
}

/// Build the tile Cholesky task graph for an initial rank snapshot.
pub fn build_cholesky_dag(initial: &RankSnapshot, cfg: &DagConfig) -> CholeskyDag {
    let nt = initial.nt();
    let b = initial.tile_size();
    let analysis = MatrixAnalysis::analyze(initial, cfg.rank_cap);
    let ranks = &analysis.final_ranks;

    let mut graph = TaskGraph::new();
    let mut kinds: Vec<TaskKind> = Vec::new();
    let mut task_flops: Vec<f64> = Vec::new();
    let mut rank_param: Vec<usize> = Vec::new();
    let mut nested: Vec<bool> = Vec::new();

    // last_writer[tile] = task that produced the current version.
    let lower = |i: usize, j: usize| i * (i + 1) / 2 + j;
    let mut last_writer: Vec<Option<TaskId>> = vec![None; nt * (nt + 1) / 2];

    #[allow(clippy::too_many_arguments)]
    let add = |graph: &mut TaskGraph,
                   kinds: &mut Vec<TaskKind>,
                   task_flops: &mut Vec<f64>,
                   rank_param: &mut Vec<usize>,
                   nested: &mut Vec<bool>,
                   kind: TaskKind,
                   class: TaskClass,
                   k: usize,
                   writes: (usize, usize),
                   fl: f64,
                   kparam: usize,
                   is_nested: bool|
     -> TaskId {
        let id = graph.add_task(TaskSpec {
            class,
            priority: k,
            writes: Some(DataRef { i: writes.0, j: writes.1 }),
            flops: fl,
        });
        kinds.push(kind);
        task_flops.push(fl);
        rank_param.push(kparam);
        nested.push(is_nested);
        id
    };

    for k in 0..nt {
        // ---------------- POTRF(k) ----------------
        let potrf_id = add(
            &mut graph,
            &mut kinds,
            &mut task_flops,
            &mut rank_param,
            &mut nested,
            TaskKind::Potrf { k },
            TaskClass::Potrf,
            k,
            (k, k),
            flops::potrf(b),
            b,
            true,
        );
        if let Some(w) = last_writer[lower(k, k)] {
            graph.add_edge(w, potrf_id, DataRef { i: k, j: k }, (b * b * 8) as u64);
        }
        last_writer[lower(k, k)] = Some(potrf_id);

        if k + 1 >= nt {
            break;
        }

        // Which rows participate in this panel?
        let rows: Vec<usize> = if cfg.trimmed {
            analysis.trsm[k].clone()
        } else {
            (k + 1..nt).collect()
        };

        // ---------------- TRSM(k, m) ----------------
        let mut trsm_id: Vec<Option<TaskId>> = vec![None; nt];
        for &m in &rows {
            let r = ranks.rank(m, k);
            let (fl, kparam) = if r == 0 {
                (0.0, 1) // untrimmed no-op on a null tile
            } else if dense_format(r, b) {
                (flops::trsm_dense(b), b)
            } else {
                (flops::trsm_lr(b, r), r)
            };
            let id = add(
                &mut graph,
                &mut kinds,
                &mut task_flops,
                &mut rank_param,
                &mut nested,
                TaskKind::Trsm { k, m },
                TaskClass::Trsm,
                k,
                (m, k),
                fl,
                kparam,
                m <= k + 4, // panel-adjacent TRSM: critical path (nested)
            );
            // bcast of the factored diagonal tile (dense b×b)
            graph.add_edge(potrf_id, id, DataRef { i: k, j: k }, (b * b * 8) as u64);
            if let Some(w) = last_writer[lower(m, k)] {
                graph.add_edge(w, id, DataRef { i: m, j: k }, tile_bytes(m, k, r, b));
            }
            last_writer[lower(m, k)] = Some(id);
            trsm_id[m] = Some(id);
        }

        // ---------------- SYRK(k, m) ----------------
        for &m in &rows {
            let r = ranks.rank(m, k);
            let (fl, kparam) = if r == 0 {
                (0.0, 1)
            } else if dense_format(r, b) {
                (flops::syrk_dense(b), b)
            } else {
                (flops::syrk_lr(b, r), r)
            };
            let id = add(
                &mut graph,
                &mut kinds,
                &mut task_flops,
                &mut rank_param,
                &mut nested,
                TaskKind::Syrk { k, m },
                TaskClass::Syrk,
                k,
                (m, m),
                fl,
                kparam,
                // SYRK accumulations serialize on the shared diagonal
                // tile and feed the next POTRF: always on the critical
                // path, always nested (multithreaded accumulation)
                true,
            );
            let t = trsm_id[m].expect("SYRK row implies TRSM row");
            graph.add_edge(t, id, DataRef { i: m, j: k }, tile_bytes(m, k, r, b));
            if let Some(w) = last_writer[lower(m, m)] {
                graph.add_edge(w, id, DataRef { i: m, j: m }, (b * b * 8) as u64);
            }
            last_writer[lower(m, m)] = Some(id);
        }

        // ---------------- GEMM(k, m, n) ----------------
        // rows is ascending; pair (m, n) with m > n.
        for i in 1..rows.len() {
            for j in 0..i {
                let m = rows[i];
                let n = rows[j];
                let ka = ranks.rank(m, k);
                let kb = ranks.rank(n, k);
                if cfg.trimmed && (ka == 0 || kb == 0) {
                    // cannot happen with analysis-driven rows, but keep the
                    // guard for clarity
                    continue;
                }
                let kc = ranks.rank(m, n);
                let (fl, kparam) = if ka == 0 || kb == 0 {
                    (0.0, 1) // untrimmed no-op
                } else if dense_format(ka, b) && dense_format(kb, b) {
                    (flops::gemm_dense(b), b)
                } else {
                    // recompression cost is governed by the stacked rank
                    (flops::gemm_tlr(b, ka, kb, kc), (kc + ka.min(kb)).min(b))
                };
                let id = add(
                    &mut graph,
                    &mut kinds,
                    &mut task_flops,
                    &mut rank_param,
                    &mut nested,
                    TaskKind::Gemm { k, m, n },
                    TaskClass::Gemm,
                    k,
                    (m, n),
                    fl,
                    kparam,
                    // Two kinds of GEMMs sit on the critical path and run
                    // nested: updates inside the panel-adjacent lookahead
                    // window, and accumulations onto near-diagonal tiles
                    // (long serialized chains of high-rank updates, like
                    // the SYRK accumulations).
                    m - n <= 4 || (n <= k + 2 && m <= k + 4),
                );
                let tm = trsm_id[m].expect("GEMM row implies TRSM");
                let tn = trsm_id[n].expect("GEMM col implies TRSM");
                graph.add_edge(tm, id, DataRef { i: m, j: k }, tile_bytes(m, k, ka, b));
                graph.add_edge(tn, id, DataRef { i: n, j: k }, tile_bytes(n, k, kb, b));
                if let Some(w) = last_writer[lower(m, n)] {
                    graph.add_edge(w, id, DataRef { i: m, j: n }, tile_bytes(m, n, kc, b));
                }
                last_writer[lower(m, n)] = Some(id);
            }
        }
    }

    CholeskyDag { graph, kinds, analysis, flops: task_flops, rank_param, nested }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(nt: usize, b: usize, entries: &[(usize, usize, usize)]) -> RankSnapshot {
        let mut ranks = vec![0usize; nt * nt];
        for i in 0..nt {
            ranks[i * nt + i] = b;
        }
        for &(m, n, r) in entries {
            ranks[m * nt + n] = r;
        }
        RankSnapshot::new(nt, b, ranks)
    }

    fn dense_snap(nt: usize, b: usize, r: usize) -> RankSnapshot {
        let entries: Vec<_> =
            (0..nt).flat_map(|m| (0..m).map(move |n| (m, n, r))).collect();
        snap(nt, b, &entries)
    }

    #[test]
    fn dense_task_count_formula() {
        let nt = 6;
        let dag = build_cholesky_dag(&dense_snap(nt, 64, 8), &DagConfig::default());
        let expect = nt + nt * (nt - 1) + nt * (nt - 1) * (nt - 2) / 6;
        assert_eq!(dag.graph.len(), expect);
        assert!(dag.graph.topological_order().is_some());
    }

    #[test]
    fn trimmed_smaller_than_untrimmed() {
        // tridiagonal tile structure
        let nt = 10;
        let entries: Vec<_> = (1..nt).map(|m| (m, m - 1, 4usize)).collect();
        let s = snap(nt, 64, &entries);
        let trimmed = build_cholesky_dag(&s, &DagConfig { trimmed: true, rank_cap: 64 });
        let full = build_cholesky_dag(&s, &DagConfig { trimmed: false, rank_cap: 64 });
        assert!(trimmed.graph.len() < full.graph.len());
        assert!(trimmed.graph.num_edges() < full.graph.num_edges());
        // identical non-zero flop totals: trimming removes only no-ops
        let nz = |d: &CholeskyDag| d.flops.iter().filter(|f| **f > 0.0).sum::<f64>();
        assert!((nz(&trimmed) - nz(&full)).abs() < 1e-6);
    }

    #[test]
    fn untrimmed_null_tasks_have_zero_flops() {
        let nt = 6;
        let entries = [(1usize, 0usize, 4usize)];
        let s = snap(nt, 64, &entries);
        let full = build_cholesky_dag(&s, &DagConfig { trimmed: false, rank_cap: 64 });
        let zero_flop = full.flops.iter().filter(|f| **f == 0.0).count();
        assert!(zero_flop > 0, "null tiles must appear as no-op tasks");
    }

    #[test]
    fn critical_path_has_potrf_chain() {
        // The critical path must contain every POTRF (they are serialized).
        let nt = 5;
        let dag = build_cholesky_dag(&dense_snap(nt, 64, 8), &DagConfig::default());
        let cp = runtime::critical_path::critical_path(&dag.graph, |t| {
            1.0 + dag.flops[t] / 1e9
        });
        let potrf_on_path = cp
            .tasks
            .iter()
            .filter(|&&t| matches!(dag.kinds[t], TaskKind::Potrf { .. }))
            .count();
        assert_eq!(potrf_on_path, nt, "all POTRFs serialize on the critical path");
    }

    #[test]
    fn trimmed_graph_contains_fill_tasks() {
        // (1,0),(2,0) non-null ⇒ fill (2,1) ⇒ TRSM(1,2) must exist.
        let s = snap(3, 64, &[(1, 0, 4), (2, 0, 4)]);
        let dag = build_cholesky_dag(&s, &DagConfig { trimmed: true, rank_cap: 64 });
        assert!(dag
            .kinds
            .iter()
            .any(|k| matches!(k, TaskKind::Trsm { k: 1, m: 2 })));
        assert!(dag
            .kinds
            .iter()
            .any(|k| matches!(k, TaskKind::Gemm { k: 0, m: 2, n: 1 })));
    }

    #[test]
    fn rank_params_follow_format() {
        let nt = 4;
        // rank 2 of 64 → LR; rank 40 of 64 → dense format
        let s = snap(nt, 64, &[(1, 0, 2), (2, 0, 40), (2, 1, 2), (3, 2, 2), (3, 0, 2), (3, 1, 2)]);
        let dag = build_cholesky_dag(&s, &DagConfig::default());
        for (idx, kind) in dag.kinds.iter().enumerate() {
            match kind {
                TaskKind::Trsm { k: 0, m: 1 } => {
                    assert_eq!(dag.rank_param[idx], 2);
                    assert!(dag.nested[idx], "first panel TRSM is critical");
                }
                TaskKind::Trsm { k: 0, m: 2 } => {
                    assert_eq!(dag.rank_param[idx], 64, "dense-format tile");
                    assert!(dag.nested[idx], "panel-adjacent TRSM is critical");
                }
                TaskKind::Trsm { k: 0, m: 3 } => {
                    assert!(dag.nested[idx], "window TRSM is critical");
                }
                TaskKind::Potrf { .. } => {
                    assert_eq!(dag.rank_param[idx], 64);
                    assert!(dag.nested[idx]);
                }
                TaskKind::Gemm { k: 0, m: 2, n: 1 } => {
                    assert!(dag.nested[idx], "near-panel GEMM is critical")
                }
                TaskKind::Gemm { k: 0, m: 3, n: 1 } => {
                    assert!(dag.nested[idx], "window GEMM is critical")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn edges_carry_bytes() {
        let dag = build_cholesky_dag(&dense_snap(4, 64, 4), &DagConfig::default());
        // every POTRF → TRSM edge ships the dense diagonal tile
        let dense_bytes = (64 * 64 * 8) as u64;
        let mut seen_dense = false;
        let mut seen_lr = false;
        for t in 0..dag.graph.len() {
            for e in dag.graph.successors(t) {
                if e.bytes == dense_bytes {
                    seen_dense = true;
                } else if e.bytes == (8 * 4 * 2 * 64) as u64 {
                    seen_lr = true;
                }
            }
        }
        assert!(seen_dense && seen_lr);
    }

    #[test]
    fn single_tile_matrix() {
        let dag = build_cholesky_dag(&snap(1, 32, &[]), &DagConfig::default());
        assert_eq!(dag.graph.len(), 1);
        assert!(matches!(dag.kinds[0], TaskKind::Potrf { k: 0 }));
    }
}

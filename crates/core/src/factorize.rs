//! Shared-memory TLR Cholesky with real numerics.
//!
//! This is the validation path of the reproduction: the same task graph
//! the distributed simulator prices is executed for real by the
//! work-stealing executor, calling the HiCMA-style tile kernels on a
//! [`TlrMatrix`]. Running trimmed and untrimmed graphs must produce the
//! same factor (trimming only removes numeric no-ops), which the tests
//! check — that is the correctness argument for §VI.

use crate::plan::SymbolicPlan;
use crate::session::{RunError, Session};
use runtime::engine::EngineError;
use runtime::obs::RunMetrics;
use runtime::scheduler::SchedPolicy;
use runtime::trace::{ClassBreakdown, Trace};
use tlr_compress::{CompressionConfig, RankEvolution, RankSnapshot, TlrMatrix};
use tlr_linalg::CholeskyError;

/// Options of the shared-memory factorization.
#[derive(Debug, Clone, Copy)]
pub struct FactorConfig {
    /// Recompression accuracy used inside the GEMM kernels (normally the
    /// same threshold the matrix was compressed with).
    pub accuracy: f64,
    /// Rank cap (HiCMA `maxrank`).
    pub max_rank: usize,
    /// Run with the Algorithm-1-trimmed DAG.
    pub trimmed: bool,
    /// Worker threads for the executor.
    ///
    /// Oversubscription rule: the tile kernels run *serial* BLAS, so total
    /// concurrency is `nthreads` — never executor threads × pool threads.
    /// The rayon pool only serves the pre-factorization phases (assembly,
    /// compression, top-level dense BLAS), which is why the default tracks
    /// the same `RAYON_NUM_THREADS`/`available_parallelism` resolution as
    /// the pool: both layers see one consistent hardware budget.
    pub nthreads: usize,
    /// On a pivot failure, retry up to this many times on `A + εI` with an
    /// escalating shift `ε` (LDLᵀ-style regularization for borderline
    /// matrices). `0` disables the retry; a strongly indefinite matrix
    /// fails regardless because the shifts stay near the working accuracy.
    pub max_shift_retries: usize,
    /// Collect a per-task execution trace and derived metrics
    /// ([`FactorReport::metrics`]). Requires the `obs` cargo feature —
    /// without it the flag is ignored (the instrumentation is compiled
    /// out) and `metrics` stays `None`. Defaults to the feature state, so
    /// an `obs` build traces unless explicitly asked not to.
    pub collect_trace: bool,
    /// Storage-payoff threshold for tiles *recompressed during the
    /// factorization*: a rank-`k` update result stays low-rank only when
    /// `k · (rows + cols) ≤ keep_dense_ratio · rows · cols`, otherwise it
    /// is stored dense. `1.0` (the default, matching
    /// [`CompressionConfig`]) densifies only when the factors would be
    /// strictly larger than the dense tile; smaller values trade memory
    /// for dense-BLAS-friendly tiles, and `0.0` densifies every
    /// recompressed tile. Threaded to the update kernels on every path
    /// (shared-memory and distributed) via [`FactorConfig::compression`].
    pub keep_dense_ratio: f64,
    /// Collect always-available runtime metrics into a
    /// [`runtime::obs::registry::Registry`]: per-class task durations,
    /// enqueue/steal counters, workspace arena high-water marks,
    /// recompression-rank histograms (shared-memory runs) and comm /
    /// fault / integrity totals (distributed runs). Unlike
    /// [`collect_trace`](FactorConfig::collect_trace) this needs no
    /// cargo feature and costs a handful of relaxed atomic adds per
    /// task — the `trace_overhead` bench gates it at ≤5 %. The merged
    /// snapshot lands in
    /// [`RunOutcome::registry`](crate::session::RunOutcome::registry);
    /// builds with the runtime's `metrics` feature disabled still
    /// compile and run, the snapshot is just empty. Defaults to `true`.
    pub collect_metrics: bool,
    /// Tile-integrity policy: whether (and how eagerly) every tile is
    /// sealed with an exact content digest ([`tlr_compress::TileDigest`])
    /// and checked against silent data corruption. See
    /// [`IntegrityMode`] for the cost/coverage ladder. Defaults to
    /// [`IntegrityMode::Off`] (zero overhead); a distributed fault plan
    /// that injects corruption arms the layer automatically.
    pub integrity: IntegrityMode,
    /// Ready-queue scheduling policy consulted by the executor (and, on
    /// the distributed path, applied as a priority-driven topological
    /// reordering of each rank's queue). Policies change execution
    /// *order* and makespan, never the factor values — the proptests in
    /// `tests/engine_composition.rs` hold every policy to bit-identical
    /// results. Defaults to [`SchedPolicy::PanelPriority`], the paper's
    /// static panel-index order.
    pub sched: SchedPolicy,
    /// Fuse each panel step's trailing-column GEMMs into single batched
    /// engine tasks ([`crate::batch::batch_panel_gemms`]), amortizing
    /// per-task scheduling overhead and sharing the packed `(n, k)`
    /// operand across a fused group. The factor is bit-identical with
    /// batching on or off — the pass never reorders any tile's update
    /// sequence — and per-kernel attribution survives through the
    /// [`crate::batch::BatchObs`] span-splitting shim. Defaults to `true`.
    ///
    /// On distributed runs batching additionally requires a plain engine
    /// configuration: it is skipped automatically under a fault layer, an
    /// armed integrity mode, or virtual-time tracing, all of which reason
    /// about single-tile tasks.
    pub batch_panels: bool,
}

/// How much silent-data-corruption protection a factorization buys.
///
/// The ladder trades detection latency for hot-path cost:
///
/// * [`Off`](IntegrityMode::Off) — no checksums, zero overhead.
/// * [`Maintain`](IntegrityMode::Maintain) — the classical ABFT shape:
///   every tile is sealed at load, resealed at its *finalizing* write
///   (the POTRF or TRSM that produces its factor value — intermediate
///   GEMM/SYRK versions are never digest-checked by this mode, so
///   resealing them would buy zero detection), and the whole factor is
///   verified once before it is returned. One digest per factor tile,
///   ≤5 % on the factorize hot path — gated by the `integrity_overhead`
///   bench. Any at-rest bit flip between a tile's finalizing write and
///   the end of the run is caught; a corrupted factor can never be
///   returned silently.
/// * [`VerifyReads`](IntegrityMode::VerifyReads) — reseal after *every*
///   kernel write and verify each tile version at its first read
///   boundary, catching a flip before it propagates into downstream
///   kernels and localizing it to the producing task. Costs roughly two
///   digests per task.
///
/// On distributed runs any mode other than `Off` seals the message and
/// store payloads ([`tlr_compress::SealedTile`]), where the engine
/// verifies at every read boundary and heals from lineage — the
/// shared-memory ladder above only governs the work-stealing path,
/// which has no lineage store to heal from and instead surfaces a
/// typed integrity error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrityMode {
    /// No integrity checking (zero overhead).
    #[default]
    Off,
    /// Seal on load, reseal at each tile's finalizing write, verify the
    /// factor once at the end.
    Maintain,
    /// `Maintain` plus verification of each tile version at its first
    /// read boundary.
    VerifyReads,
}

impl FactorConfig {
    /// Sensible defaults at the given accuracy.
    ///
    /// `nthreads` defaults to the machine's available parallelism (as seen
    /// by the rayon pool, so `RAYON_NUM_THREADS` caps it too) — it is *not*
    /// a hardcoded constant, which used to leave large machines mostly
    /// idle and oversubscribe small ones.
    pub fn with_accuracy(accuracy: f64) -> Self {
        Self {
            accuracy,
            max_rank: usize::MAX,
            trimmed: true,
            nthreads: rayon::current_num_threads(),
            max_shift_retries: 3,
            collect_trace: cfg!(feature = "obs"),
            collect_metrics: true,
            keep_dense_ratio: 1.0,
            integrity: IntegrityMode::Off,
            sched: SchedPolicy::PanelPriority,
            batch_panels: true,
        }
    }

    /// The [`CompressionConfig`] the update kernels recompress with —
    /// accuracy, rank cap and
    /// [`keep_dense_ratio`](FactorConfig::keep_dense_ratio)
    /// all come from this config (the
    /// ratio used to be silently pinned to `1.0` on every path).
    pub fn compression(&self) -> CompressionConfig {
        CompressionConfig {
            accuracy: self.accuracy,
            max_rank: self.max_rank,
            keep_dense_ratio: self.keep_dense_ratio,
        }
    }
}

/// Execution metrics of a traced factorization (`obs` feature).
///
/// Everything here is derived from the observed run itself: the span
/// trace from the executor, the rank log from the kernel workspaces, and
/// the DAG the tasks came from.
#[derive(Debug, Clone)]
pub struct FactorMetrics {
    /// Per-task spans (class, tile, worker, queue-wait, execute window).
    pub trace: Trace,
    /// Successful steals per worker.
    pub steals: Vec<u64>,
    /// Total seconds tasks spent ready-but-waiting in queues.
    pub queue_wait_seconds: f64,
    /// Recompression rank evolution merged over all kernel workspaces.
    pub rank_evolution: RankEvolution,
    /// Workspace buffer growth events after warm-up would indicate the
    /// recompression hot path allocating; steady state is 0 per worker
    /// once buffers reach their high-water mark.
    pub workspace_alloc_events: u64,
    /// Model flops of the executed DAG (priced by `flops::*` at analysis
    /// time — ranks evolve during the run, so this is the planned count).
    pub flops_executed: f64,
    /// Critical-path length through the DAG using the *measured* per-task
    /// durations, i.e. the makespan an infinitely parallel machine would
    /// have achieved on this run.
    pub critical_path_seconds: f64,
    /// `critical_path_seconds / makespan` — 1.0 means the run was as fast
    /// as its longest dependency chain allows.
    pub efficiency_vs_critical_path: f64,
    /// Busy seconds per worker.
    pub per_worker_busy: Vec<f64>,
    /// Idle fraction per worker, in `[0, 1]`.
    pub idle_fraction: Vec<f64>,
    /// `max(busy)/mean(busy)` over workers (1.0 = perfectly balanced).
    pub load_imbalance: f64,
}

impl FactorMetrics {
    /// Summarize as a [`RunMetrics`] record (shared with the simulator
    /// paths, so shared-memory and DES runs can be tabulated side by
    /// side by [`RunMetrics::comparison_table`]).
    pub fn run_metrics(&self, label: &str) -> RunMetrics {
        RunMetrics::from_trace(label, &self.trace, self.per_worker_busy.len())
            .with_critical_path(self.critical_path_seconds)
    }
}

/// What happened during a factorization.
#[derive(Debug, Clone)]
pub struct FactorReport {
    /// Wall-clock seconds of the task execution phase.
    pub factorization_seconds: f64,
    /// Wall-clock seconds of the Algorithm-1 analysis + DAG build.
    pub analysis_seconds: f64,
    /// Tasks in the executed DAG.
    pub dag_tasks: usize,
    /// Tasks of the equivalent untrimmed (dense) DAG.
    pub dense_dag_tasks: usize,
    /// Rank snapshot after the factorization (the "final" panel of Fig. 1).
    pub final_snapshot: RankSnapshot,
    /// TLR storage before the factorization, in f64 words.
    pub memory_before_f64: usize,
    /// TLR storage after the factorization (fill-in growth), f64 words.
    pub memory_after_f64: usize,
    /// Busy seconds per kernel class (wall-clock, summed over workers).
    pub breakdown: ClassBreakdown,
    /// Diagonal shift `ε` of the attempt that succeeded (`0.0` when the
    /// matrix factored without regularization).
    pub diagonal_shift: f64,
    /// How many shifted retries were needed (`0` = first try succeeded).
    pub shift_attempts: usize,
    /// Execution trace and derived metrics, when tracing was on
    /// ([`FactorConfig::collect_trace`] and the `obs` cargo feature).
    pub metrics: Option<FactorMetrics>,
}

/// Factor `matrix = L·Lᵀ` in place (lower tiles become `L`).
///
/// On success the diagonal tiles hold lower-triangular Cholesky factors
/// and the off-diagonal tiles the corresponding solved panels, all still
/// in TLR format.
///
/// On a pivot failure, and if `cfg.max_shift_retries > 0`, the original
/// matrix is restored and re-factored as `A + εI` with `ε` escalating
/// ×10 from `mean|diag| · max(accuracy, 1e-12)` — a rounding-level
/// regularization that rescues borderline matrices (e.g. SPD operators
/// pushed slightly indefinite by compression error) while leaving truly
/// indefinite ones to fail. The shift that succeeded is reported in
/// [`FactorReport::diagonal_shift`]. If every attempt fails, the error
/// reports the *smallest* failing pivot seen and the matrix is restored
/// to its input state (without retries it keeps the partial factor, as
/// before).
/// This is a one-call wrapper over [`Session::shared`] — the shift-retry
/// driver and the per-attempt pipeline live in [`crate::session`], shared
/// with the distributed paths. Kernel panics are drained by the engine
/// and re-raised here once every worker has stopped.
pub fn factorize(
    matrix: &mut TlrMatrix,
    cfg: &FactorConfig,
) -> Result<FactorReport, CholeskyError> {
    match Session::shared(*cfg).run(matrix) {
        Ok(out) => Ok(out.report),
        Err(RunError::Numeric(e)) => Err(e),
        Err(RunError::Engine(EngineError::Panic(p))) => {
            // A kernel died (not a pivot failure — those cancel cleanly).
            // The pool has drained, locks are released; re-raise with
            // context, as this entry point always has.
            panic!("factorization kernel panicked: {p}")
        }
        Err(e) => panic!("{e}"),
    }
}

/// Run the symbolic phase of [`factorize`] alone: build the reusable
/// [`SymbolicPlan`] (trimmed DAG, fused panel batches, scheduler tables)
/// for `matrix` under `cfg`, without touching any tile values. Feed the
/// plan to [`factorize_with_plan`] — or hold a
/// [`PlanCache`](crate::plan::PlanCache) and let
/// [`Session`] manage the split implicitly.
pub fn plan_factorization(matrix: &TlrMatrix, cfg: &FactorConfig) -> SymbolicPlan {
    Session::shared(*cfg)
        .plan(matrix)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`factorize`] consuming a prebuilt [`SymbolicPlan`]: the numeric
/// phase alone, skipping DAG construction, batching and scheduler
/// precomputation. The factor is bit-identical to [`factorize`]; the
/// plan must come from [`plan_factorization`] (or a
/// [`PlanCache`](crate::plan::PlanCache)) with the same config and tile
/// structure — a mismatched plan panics with both fingerprints, like
/// every other invalid-configuration error at this entry point.
pub fn factorize_with_plan(
    matrix: &mut TlrMatrix,
    cfg: &FactorConfig,
    plan: &SymbolicPlan,
) -> Result<FactorReport, CholeskyError> {
    match Session::shared(*cfg).run_with_plan(plan, matrix) {
        Ok(out) => Ok(out.report),
        Err(RunError::Numeric(e)) => Err(e),
        Err(RunError::Engine(EngineError::Panic(p))) => {
            panic!("factorization kernel panicked: {p}")
        }
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_linalg::norms::relative_diff;
    use tlr_linalg::{gemm, Matrix, Trans};

    /// Gaussian-kernel SPD generator on a 1D grid (RBF-like structure).
    fn gaussian_gen(n: usize, corr: f64) -> impl Fn(usize, usize) -> f64 + Sync {
        move |i: usize, j: usize| {
            let d = (i as f64 - j as f64) / (n as f64 / corr);
            let v = (-d * d).exp();
            if i == j {
                v + 1e-3
            } else {
                v
            }
        }
    }

    fn check_factorization(n: usize, b: usize, acc: f64, corr: f64, trimmed: bool) -> RankSnapshot {
        let gen = gaussian_gen(n, corr);
        let dense = Matrix::from_fn(n, n, &gen);
        let ccfg = CompressionConfig::with_accuracy(acc);
        let mut m = TlrMatrix::from_dense(&dense, b, &ccfg);
        let mut fcfg = FactorConfig::with_accuracy(acc);
        fcfg.trimmed = trimmed;
        let report = factorize(&mut m, &fcfg).expect("SPD matrix must factor");
        assert!(report.dag_tasks <= report.dense_dag_tasks);
        // ‖A − L·Lᵀ‖/‖A‖ small
        let l = m.to_dense_lower();
        let mut recon = Matrix::zeros(n, n);
        gemm(Trans::No, Trans::Yes, 1.0, &l, &l, 0.0, &mut recon);
        let err = relative_diff(&recon, &dense);
        let tol = acc * (m.nt() * m.nt()) as f64 / tlr_linalg::frobenius_norm(&dense);
        assert!(
            err <= tol.max(1e-11) * 20.0,
            "residual {err} too large (tol {tol}, trimmed={trimmed})"
        );
        report.final_snapshot
    }

    #[test]
    fn factorizes_trimmed_moderate_accuracy() {
        check_factorization(128, 32, 1e-6, 8.0, true);
    }

    #[test]
    fn factorizes_untrimmed_matches_trimmed() {
        let snap_t = check_factorization(96, 24, 1e-7, 6.0, true);
        let snap_u = check_factorization(96, 24, 1e-7, 6.0, false);
        // same final structure
        assert_eq!(snap_t.nt(), snap_u.nt());
        for i in 0..snap_t.nt() {
            for j in 0..i {
                assert_eq!(
                    snap_t.rank(i, j) == 0,
                    snap_u.rank(i, j) == 0,
                    "structure mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn sparse_case_trims_hard() {
        // short correlation ⇒ most tiles null ⇒ trimmed DAG much smaller
        let n = 160;
        let b = 16;
        let gen = gaussian_gen(n, 40.0);
        let ccfg = CompressionConfig::with_accuracy(1e-5);
        let mut m = TlrMatrix::from_generator(n, b, gen, &ccfg);
        assert!(
            m.density() < 0.6,
            "test premise: sparse, got {}",
            m.density()
        );
        let report = factorize(&mut m, &FactorConfig::with_accuracy(1e-5)).unwrap();
        assert!(
            (report.dag_tasks as f64) < 0.7 * report.dense_dag_tasks as f64,
            "{} vs {}",
            report.dag_tasks,
            report.dense_dag_tasks
        );
    }

    #[test]
    fn tighter_accuracy_higher_ranks() {
        let s_loose = check_factorization(96, 24, 1e-3, 6.0, true);
        let s_tight = check_factorization(96, 24, 1e-9, 6.0, true);
        assert!(s_tight.stats().avg_nonzero >= s_loose.stats().avg_nonzero);
    }

    #[test]
    fn non_spd_rejected() {
        let n = 64;
        // indefinite: strong negative diagonal block
        let dense = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i == 40 {
                    -5.0
                } else {
                    2.0
                }
            } else {
                0.01 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let ccfg = CompressionConfig::with_accuracy(1e-8);
        let mut m = TlrMatrix::from_dense(&dense, 16, &ccfg);
        let err = factorize(&mut m, &FactorConfig::with_accuracy(1e-8)).unwrap_err();
        // pivot is reported in global coordinates
        assert!(err.pivot <= 40 + 16, "pivot {}", err.pivot);
    }

    /// A matrix that is SPD except for a perturbation near the working
    /// accuracy must be rescued by the diagonal-shift retry, and the
    /// rescue must be visible in the report.
    #[test]
    fn borderline_indefinite_recovers_with_diagonal_shift() {
        let n = 96;
        let gen = gaussian_gen(n, 6.0);
        // `gen` adds 1e-3 to the diagonal of a PSD Gaussian kernel whose
        // smallest eigenvalue is ~0 at rounding scale; cancelling the bump
        // and 1e-7 more leaves λ_min ≈ −1e-7: barely indefinite.
        let dense = Matrix::from_fn(n, n, |i, j| {
            gen(i, j) - if i == j { 1e-3 + 1e-7 } else { 0.0 }
        });
        let ccfg = CompressionConfig::with_accuracy(1e-8);

        // Without retries: a clean pivot failure.
        let mut m0 = TlrMatrix::from_dense(&dense, 24, &ccfg);
        let mut cfg = FactorConfig::with_accuracy(1e-8);
        cfg.max_shift_retries = 0;
        factorize(&mut m0, &cfg).expect_err("test premise: matrix is indefinite");

        // With retries: recovered, and the shift is reported.
        let mut m = TlrMatrix::from_dense(&dense, 24, &ccfg);
        cfg.max_shift_retries = 5;
        let report = factorize(&mut m, &cfg).expect("shift retry must rescue the matrix");
        assert!(
            report.shift_attempts >= 1,
            "recovery must have used a retry"
        );
        assert!(
            report.diagonal_shift > 0.0 && report.diagonal_shift <= 1e-3,
            "shift {} should be a rounding-scale regularization",
            report.diagonal_shift
        );
        // The factor is a usable Cholesky of the (shifted) matrix.
        let l = m.to_dense_lower();
        let mut recon = Matrix::zeros(n, n);
        gemm(Trans::No, Trans::Yes, 1.0, &l, &l, 0.0, &mut recon);
        assert!(relative_diff(&recon, &dense) < 1e-5);
    }

    /// A hopelessly indefinite matrix still fails after the bounded
    /// retries, with the matrix restored to its input state.
    #[test]
    fn strongly_indefinite_fails_despite_retries() {
        let n = 64;
        let dense = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i == 40 {
                    -5.0
                } else {
                    2.0
                }
            } else {
                0.01 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let ccfg = CompressionConfig::with_accuracy(1e-8);
        let mut m = TlrMatrix::from_dense(&dense, 16, &ccfg);
        let before = m.to_dense();
        let err = factorize(&mut m, &FactorConfig::with_accuracy(1e-8)).unwrap_err();
        assert!(err.pivot <= 40 + 16, "pivot {}", err.pivot);
        // With retries enabled the input is restored on failure.
        assert!(relative_diff(&m.to_dense(), &before) == 0.0);
    }

    #[test]
    fn multithreaded_matches_single_thread() {
        let n = 96;
        let b = 24;
        let gen = gaussian_gen(n, 6.0);
        let ccfg = CompressionConfig::with_accuracy(1e-8);
        let dense = Matrix::from_fn(n, n, &gen);
        let mut m1 = TlrMatrix::from_dense(&dense, b, &ccfg);
        let mut m8 = TlrMatrix::from_dense(&dense, b, &ccfg);
        let mut cfg = FactorConfig::with_accuracy(1e-8);
        cfg.nthreads = 1;
        factorize(&mut m1, &cfg).unwrap();
        cfg.nthreads = 8;
        factorize(&mut m8, &cfg).unwrap();
        // The DAG fixes the per-tile kernel order and every kernel is
        // deterministic, so the factors must agree *bitwise* — not just to
        // rounding. Any nondeterministic reduction order would show here.
        let l1 = m1.to_dense_lower();
        let l8 = m8.to_dense_lower();
        assert_eq!(
            l1.as_slice(),
            l8.as_slice(),
            "factor differs across thread counts"
        );
    }

    /// With the `obs` feature a default config traces the run and the
    /// derived metrics are self-consistent.
    #[cfg(feature = "obs")]
    #[test]
    fn traced_run_populates_metrics() {
        let n = 96;
        let gen = gaussian_gen(n, 6.0);
        let ccfg = CompressionConfig::with_accuracy(1e-6);
        let mut m = TlrMatrix::from_generator(n, 24, gen, &ccfg);
        let mut cfg = FactorConfig::with_accuracy(1e-6);
        cfg.nthreads = 2;
        let report = factorize(&mut m, &cfg).unwrap();
        let metrics = report.metrics.expect("obs build must trace by default");
        assert_eq!(metrics.trace.records.len(), report.dag_tasks);
        assert_eq!(metrics.per_worker_busy.len(), 2);
        assert!(metrics
            .idle_fraction
            .iter()
            .all(|f| (0.0..=1.0).contains(f)));
        assert!(metrics.load_imbalance >= 1.0);
        assert!(metrics.flops_executed > 0.0);
        assert!(metrics.critical_path_seconds > 0.0);
        assert!(metrics.critical_path_seconds <= metrics.trace.makespan() + 1e-12);
        assert!((0.0..=1.0).contains(&metrics.efficiency_vs_critical_path));
        assert!(
            metrics.rank_evolution.events() > 0,
            "GEMMs must log recompressions"
        );
        // The span breakdown must roughly agree with the unconditional
        // class_nanos breakdown (same kernels, measured two ways).
        let from_trace = metrics.trace.breakdown().total();
        let from_nanos = report.breakdown.total();
        assert!(
            (from_trace - from_nanos).abs() <= 0.5 * from_nanos.max(1e-6),
            "trace {from_trace} vs class_nanos {from_nanos}"
        );
        // Opting out at runtime must also work in an obs build.
        let gen2 = gaussian_gen(n, 6.0);
        let mut m2 = TlrMatrix::from_generator(n, 24, gen2, &ccfg);
        cfg.collect_trace = false;
        let report2 = factorize(&mut m2, &cfg).unwrap();
        assert!(report2.metrics.is_none());
    }

    /// Without the feature, `collect_trace` is inert and `metrics` stays
    /// `None` — the instrumentation is compiled out.
    #[cfg(not(feature = "obs"))]
    #[test]
    fn untraced_build_has_no_metrics() {
        let n = 96;
        let gen = gaussian_gen(n, 6.0);
        let ccfg = CompressionConfig::with_accuracy(1e-6);
        let mut m = TlrMatrix::from_generator(n, 24, gen, &ccfg);
        let mut cfg = FactorConfig::with_accuracy(1e-6);
        cfg.collect_trace = true; // explicitly requested, still compiled out
        let report = factorize(&mut m, &cfg).unwrap();
        assert!(report.metrics.is_none());
    }

    /// The configured `keep_dense_ratio` reaches the shared-memory update
    /// kernels: `0.0` densifies every recompressed tile, so the factored
    /// matrix stores more words than the default payoff rule, while the
    /// numbers stay correct.
    #[test]
    fn keep_dense_ratio_threads_through_kernels() {
        let n = 120;
        let b = 24;
        let acc = 1e-8;
        let gen = gaussian_gen(n, 8.0);
        let dense = Matrix::from_fn(n, n, &gen);
        let ccfg = CompressionConfig::with_accuracy(acc);

        let mut lr = TlrMatrix::from_dense(&dense, b, &ccfg);
        let rep_lr = factorize(&mut lr, &FactorConfig::with_accuracy(acc)).unwrap();

        let mut dense_m = TlrMatrix::from_dense(&dense, b, &ccfg);
        let mut cfg0 = FactorConfig::with_accuracy(acc);
        cfg0.keep_dense_ratio = 0.0;
        let rep_dense = factorize(&mut dense_m, &cfg0).unwrap();

        assert!(
            rep_dense.memory_after_f64 > rep_lr.memory_after_f64,
            "ratio 0.0 must densify recompressed tiles ({} vs {} words)",
            rep_dense.memory_after_f64,
            rep_lr.memory_after_f64
        );
        let diff = relative_diff(&dense_m.to_dense_lower(), &lr.to_dense_lower());
        assert!(diff < 100.0 * acc, "factor drifted: {diff}");
    }

    #[test]
    fn breakdown_is_populated() {
        let n = 96;
        let gen = gaussian_gen(n, 6.0);
        let ccfg = CompressionConfig::with_accuracy(1e-6);
        let mut m = TlrMatrix::from_generator(n, 24, gen, &ccfg);
        let report = factorize(&mut m, &FactorConfig::with_accuracy(1e-6)).unwrap();
        assert!(report.breakdown.potrf > 0.0);
        assert!(report.breakdown.total() > 0.0);
        assert!(report.factorization_seconds > 0.0);
    }
}

//! Triangular solves on a TLR-factored matrix, and symmetric TLR
//! matrix–vector products.
//!
//! After [`crate::factorize()`] the matrix holds `L` tile-by-tile (dense on
//! the diagonal, TLR/null off it). The solve sweeps tiles block-wise:
//! forward substitution panel by panel, then the transposed backward
//! sweep. Low-rank tiles apply as two skinny products `U·(Vᵀ·x)` — the
//! `O(b·k)` saving that makes the TLR solve cheap.

use tlr_compress::{Tile, TlrMatrix};
use tlr_linalg::{trsv_lower, trsv_lower_trans, Matrix};

/// `y += alpha · T · x` for one tile.
fn tile_apply(t: &Tile, x: &[f64], y: &mut [f64], alpha: f64) {
    match t {
        Tile::Dense(m) => {
            for (j, &xv) in x.iter().enumerate() {
                if xv != 0.0 {
                    let col = m.col(j);
                    let w = alpha * xv;
                    for (yi, ci) in y.iter_mut().zip(col) {
                        *yi += w * ci;
                    }
                }
            }
        }
        Tile::LowRank { u, v } => {
            // y += alpha · U · (Vᵀ x)
            let s = v.matvec_t(x);
            for (p, &sp) in s.iter().enumerate() {
                if sp != 0.0 {
                    let col = u.col(p);
                    let w = alpha * sp;
                    for (yi, ci) in y.iter_mut().zip(col) {
                        *yi += w * ci;
                    }
                }
            }
        }
        Tile::Null { .. } => {}
    }
}

/// `y += alpha · Tᵀ · x` for one tile.
fn tile_apply_t(t: &Tile, x: &[f64], y: &mut [f64], alpha: f64) {
    match t {
        Tile::Dense(m) => {
            let r = m.matvec_t(x);
            for (yi, ri) in y.iter_mut().zip(&r) {
                *yi += alpha * ri;
            }
        }
        Tile::LowRank { u, v } => {
            // Tᵀ = V·Uᵀ ⇒ y += alpha · V · (Uᵀ x)
            let s = u.matvec_t(x);
            for (p, &sp) in s.iter().enumerate() {
                if sp != 0.0 {
                    let col = v.col(p);
                    let w = alpha * sp;
                    for (yi, ci) in y.iter_mut().zip(col) {
                        *yi += w * ci;
                    }
                }
            }
        }
        Tile::Null { .. } => {}
    }
}

/// Symmetric matrix–vector product `y = A·x` using the lower TLR storage
/// (the upper triangle is applied as the transpose of the lower).
pub fn tlr_matvec(a: &TlrMatrix, x: &[f64]) -> Vec<f64> {
    let n = a.n();
    assert_eq!(x.len(), n, "dimension mismatch");
    let b = a.tile_size();
    let mut y = vec![0.0; n];
    for i in 0..a.nt() {
        let ri = i * b;
        let rows_i = a.tile_rows(i);
        for j in 0..=i {
            let cj = j * b;
            let cols_j = a.tile_rows(j);
            let t = a.tile(i, j);
            tile_apply(t, &x[cj..cj + cols_j], &mut y[ri..ri + rows_i], 1.0);
            if i != j {
                // mirrored upper block (j, i) = tileᵀ
                tile_apply_t(t, &x[ri..ri + rows_i], &mut y[cj..cj + cols_j], 1.0);
            }
        }
    }
    y
}

/// Solve `L·Lᵀ·x = b` in place given the factored matrix; `rhs` holds `b`
/// on entry and `x` on exit.
pub fn solve_tlr(l: &TlrMatrix, rhs: &mut [f64]) {
    let n = l.n();
    assert_eq!(rhs.len(), n, "dimension mismatch");
    let b = l.tile_size();
    let nt = l.nt();
    // Forward: L·y = b
    for i in 0..nt {
        let ri = i * b;
        let rows_i = l.tile_rows(i);
        // subtract already-solved panels
        for j in 0..i {
            let cj = j * b;
            let cols_j = l.tile_rows(j);
            // copy the needed slices to avoid overlapping borrows
            let xj: Vec<f64> = rhs[cj..cj + cols_j].to_vec();
            tile_apply(l.tile(i, j), &xj, &mut rhs[ri..ri + rows_i], -1.0);
        }
        let diag = match l.tile(i, i) {
            Tile::Dense(m) => m,
            _ => panic!("factored diagonal tiles must be dense"),
        };
        trsv_lower(diag, &mut rhs[ri..ri + rows_i]);
    }
    // Backward: Lᵀ·x = y
    for i in (0..nt).rev() {
        let ri = i * b;
        let rows_i = l.tile_rows(i);
        for m in i + 1..nt {
            let rm = m * b;
            let rows_m = l.tile_rows(m);
            let xm: Vec<f64> = rhs[rm..rm + rows_m].to_vec();
            // x_i −= L(m,i)ᵀ · x_m
            tile_apply_t(l.tile(m, i), &xm, &mut rhs[ri..ri + rows_i], -1.0);
        }
        let diag = match l.tile(i, i) {
            Tile::Dense(m) => m,
            _ => panic!("factored diagonal tiles must be dense"),
        };
        trsv_lower_trans(diag, &mut rhs[ri..ri + rows_i]);
    }
}

/// Reference dense matvec against the materialized matrix (testing).
pub fn dense_matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    a.matvec(x)
}

/// Solve `A·x = b` by iterative refinement: the TLR factorization at a
/// loose threshold acts as a preconditioner and each sweep recovers
/// roughly `−log₁₀(ε·κ)` digits, so a cheap `ε = 1e-4` factorization
/// (the paper's default threshold) can still deliver near-machine
/// accuracy. This is the standard practice that makes loose TLR
/// thresholds usable for solves, not just for the factorization itself.
///
/// `a` is the unfactored TLR operator, `l` its factorization, `rhs`
/// holds `b` on entry and the refined `x` on exit. Returns the relative
/// residual after each sweep (length `iters + 1`, starting with the
/// unrefined solve).
pub fn solve_refined(a: &TlrMatrix, l: &TlrMatrix, rhs: &mut [f64], iters: usize) -> Vec<f64> {
    let n = a.n();
    assert_eq!(rhs.len(), n, "dimension mismatch");
    let b: Vec<f64> = rhs.to_vec();
    let bnorm = b.iter().map(|x| x * x).sum::<f64>().sqrt().max(f64::MIN_POSITIVE);
    // initial solve
    solve_tlr(l, rhs);
    let mut history = Vec::with_capacity(iters + 1);
    let residual = |x: &[f64]| -> (Vec<f64>, f64) {
        let ax = tlr_matvec(a, x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let rnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        (r, rnorm / bnorm)
    };
    let (mut r, mut rel) = residual(rhs);
    history.push(rel);
    for _ in 0..iters {
        // d = L⁻ᵀL⁻¹ r;  x += d
        let mut d = r.clone();
        solve_tlr(l, &mut d);
        for (xi, di) in rhs.iter_mut().zip(&d) {
            *xi += di;
        }
        (r, rel) = residual(rhs);
        history.push(rel);
        if rel < 1e-15 {
            break;
        }
    }
    history
}

/// `Y += alpha · T · X` for one tile against a block of right-hand sides
/// (`X: cols × nrhs`, `Y: rows × nrhs`) — BLAS-3 shaped, so the solve
/// amortizes tile traversal over all RHS (mesh deformation always has
/// three: the displacement components).
fn tile_apply_block(t: &Tile, x: &Matrix, y: &mut Matrix, alpha: f64) {
    use tlr_linalg::{gemm_serial, Trans};
    match t {
        Tile::Dense(m) => gemm_serial(Trans::No, Trans::No, alpha, m, x, 1.0, y),
        Tile::LowRank { u, v } => {
            // Y += alpha · U · (Vᵀ X)
            let k = u.cols();
            let mut s = Matrix::zeros(k, x.cols());
            gemm_serial(Trans::Yes, Trans::No, 1.0, v, x, 0.0, &mut s);
            gemm_serial(Trans::No, Trans::No, alpha, u, &s, 1.0, y);
        }
        Tile::Null { .. } => {}
    }
}

/// `Y += alpha · Tᵀ · X` for one tile against a block of right-hand sides.
fn tile_apply_block_t(t: &Tile, x: &Matrix, y: &mut Matrix, alpha: f64) {
    use tlr_linalg::{gemm_serial, Trans};
    match t {
        Tile::Dense(m) => gemm_serial(Trans::Yes, Trans::No, alpha, m, x, 1.0, y),
        Tile::LowRank { u, v } => {
            // Tᵀ = V·Uᵀ ⇒ Y += alpha · V · (Uᵀ X)
            let k = u.cols();
            let mut s = Matrix::zeros(k, x.cols());
            gemm_serial(Trans::Yes, Trans::No, 1.0, u, x, 0.0, &mut s);
            gemm_serial(Trans::No, Trans::No, alpha, v, &s, 1.0, y);
        }
        Tile::Null { .. } => {}
    }
}

/// Solve `L·Lᵀ·X = B` in place for a block of right-hand sides
/// (`rhs: n × nrhs`, column-major). BLAS-3 version of [`solve_tlr`];
/// the application's three displacement components share one traversal.
pub fn solve_tlr_multi(l: &TlrMatrix, rhs: &mut Matrix) {
    use tlr_linalg::{trsm, Side, Trans, Uplo};
    let n = l.n();
    assert_eq!(rhs.rows(), n, "dimension mismatch");
    let nrhs = rhs.cols();
    let b = l.tile_size();
    let nt = l.nt();
    let take_block = |rhs: &Matrix, i: usize| -> Matrix {
        let r0 = i * b;
        rhs.submatrix(r0, 0, l.tile_rows(i), nrhs)
    };
    // Forward: L·Y = B
    for i in 0..nt {
        let mut xi = take_block(rhs, i);
        for j in 0..i {
            let xj = take_block(rhs, j);
            tile_apply_block(l.tile(i, j), &xj, &mut xi, -1.0);
        }
        let diag = match l.tile(i, i) {
            Tile::Dense(m) => m,
            _ => panic!("factored diagonal tiles must be dense"),
        };
        trsm(Side::Left, Uplo::Lower, Trans::No, 1.0, diag, &mut xi);
        rhs.set_submatrix(i * b, 0, &xi);
    }
    // Backward: Lᵀ·X = Y
    for i in (0..nt).rev() {
        let mut xi = take_block(rhs, i);
        for m in i + 1..nt {
            let xm = take_block(rhs, m);
            tile_apply_block_t(l.tile(m, i), &xm, &mut xi, -1.0);
        }
        let diag = match l.tile(i, i) {
            Tile::Dense(m) => m,
            _ => panic!("factored diagonal tiles must be dense"),
        };
        trsm(Side::Left, Uplo::Lower, Trans::Yes, 1.0, diag, &mut xi);
        rhs.set_submatrix(i * b, 0, &xi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorize::{factorize, FactorConfig};
    use tlr_compress::CompressionConfig;

    fn gaussian_gen(n: usize) -> impl Fn(usize, usize) -> f64 + Sync {
        move |i: usize, j: usize| {
            let d = (i as f64 - j as f64) / (n as f64 / 8.0);
            let v = (-d * d).exp();
            if i == j {
                v + 1e-3
            } else {
                v
            }
        }
    }

    #[test]
    fn matvec_matches_dense() {
        let n = 100;
        let gen = gaussian_gen(n);
        let dense = Matrix::from_fn(n, n, &gen);
        let m = TlrMatrix::from_dense(&dense, 32, &CompressionConfig::with_accuracy(1e-10));
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64 - 6.0) / 6.0).collect();
        let y_tlr = tlr_matvec(&m, &x);
        let y_dense = dense.matvec(&x);
        let err: f64 = y_tlr
            .iter()
            .zip(&y_dense)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-7, "matvec error {err}");
    }

    #[test]
    fn solve_recovers_solution() {
        let n = 120;
        let gen = gaussian_gen(n);
        let dense = Matrix::from_fn(n, n, &gen);
        let acc = 1e-9;
        let mut m = TlrMatrix::from_dense(&dense, 24, &CompressionConfig::with_accuracy(acc));
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let b = dense.matvec(&x_true);
        factorize(&mut m, &FactorConfig::with_accuracy(acc)).unwrap();
        let mut x = b.clone();
        solve_tlr(&m, &mut x);
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
            / (n as f64).sqrt();
        assert!(err < 1e-5, "solve error {err}");
    }

    #[test]
    fn refinement_recovers_accuracy_from_loose_threshold() {
        // Factor at a loose 1e-4; refinement must push the residual far
        // below what the unrefined solve delivers.
        let n = 120;
        let gen = gaussian_gen(n);
        let dense = Matrix::from_fn(n, n, &gen);
        let loose = 1e-4;
        let a = TlrMatrix::from_dense(&dense, 24, &CompressionConfig::with_accuracy(loose));
        let mut l = TlrMatrix::from_dense(&dense, 24, &CompressionConfig::with_accuracy(loose));
        factorize(&mut l, &FactorConfig::with_accuracy(loose)).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).cos()).collect();
        let b = dense.matvec(&x_true);
        let mut x = b.clone();
        let history = crate::solve::solve_refined(&a, &l, &mut x, 6);
        assert!(history.len() >= 2);
        let first = history[0];
        let last = *history.last().unwrap();
        assert!(
            last < first / 1e3,
            "refinement must gain ≥3 digits: {first:.2e} → {last:.2e}"
        );
        assert!(last < 1e-10, "refined residual {last:.2e}");
        // monotone (non-increasing) residuals
        for w in history.windows(2) {
            assert!(w[1] <= w[0] * 1.5, "residuals must not blow up: {history:?}");
        }
    }

    #[test]
    fn multi_rhs_matches_single_rhs() {
        let n = 120;
        let gen = gaussian_gen(n);
        let dense = Matrix::from_fn(n, n, &gen);
        let acc = 1e-9;
        let mut m = TlrMatrix::from_dense(&dense, 24, &CompressionConfig::with_accuracy(acc));
        factorize(&mut m, &FactorConfig::with_accuracy(acc)).unwrap();
        // three RHS, like the deformation components
        let nrhs = 3;
        let b_block = Matrix::from_fn(n, nrhs, |i, c| ((i + 3 * c) as f64 * 0.07).sin());
        // single-RHS path per column
        let mut singles = Vec::new();
        for c in 0..nrhs {
            let mut x = b_block.col(c).to_vec();
            solve_tlr(&m, &mut x);
            singles.push(x);
        }
        // blocked path
        let mut x_block = b_block.clone();
        solve_tlr_multi(&m, &mut x_block);
        for c in 0..nrhs {
            for i in 0..n {
                assert!(
                    (x_block[(i, c)] - singles[c][i]).abs() < 1e-10,
                    "mismatch at ({i},{c})"
                );
            }
        }
    }

    #[test]
    fn multi_rhs_ragged_tiles() {
        let n = 110; // ragged last tile
        let gen = gaussian_gen(n);
        let dense = Matrix::from_fn(n, n, &gen);
        let acc = 1e-10;
        let mut m = TlrMatrix::from_dense(&dense, 32, &CompressionConfig::with_accuracy(acc));
        factorize(&mut m, &FactorConfig::with_accuracy(acc)).unwrap();
        let x_true = Matrix::from_fn(n, 2, |i, c| 1.0 + ((i * (c + 2)) % 7) as f64);
        let mut b_block = Matrix::zeros(n, 2);
        for c in 0..2 {
            let bx = dense.matvec(x_true.col(c));
            b_block.col_mut(c).copy_from_slice(&bx);
        }
        solve_tlr_multi(&m, &mut b_block);
        let mut worst = 0.0_f64;
        for c in 0..2 {
            for i in 0..n {
                worst = worst.max((b_block[(i, c)] - x_true[(i, c)]).abs());
            }
        }
        assert!(worst < 1e-3, "multi-RHS ragged solve max error {worst}");
    }

    #[test]
    fn solve_with_ragged_last_tile() {
        let n = 110; // 110 = 3*32 + 14 → ragged last tile
        let gen = gaussian_gen(n);
        let dense = Matrix::from_fn(n, n, &gen);
        let acc = 1e-10;
        let mut m = TlrMatrix::from_dense(&dense, 32, &CompressionConfig::with_accuracy(acc));
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let b = dense.matvec(&x_true);
        factorize(&mut m, &FactorConfig::with_accuracy(acc)).unwrap();
        let mut x = b;
        solve_tlr(&m, &mut x);
        let err: f64 =
            x.iter().zip(&x_true).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        // The Gaussian kernel matrix is ill-conditioned (overlapping
        // bumps); the forward error is κ(A)·ε, well above the threshold.
        assert!(err < 1e-3, "ragged solve max error {err}");
    }
}

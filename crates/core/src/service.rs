//! Multi-tenant solver service over the shared-memory engine.
//!
//! [`SolveService`] is the long-lived front-end the symbolic/numeric
//! split was built for: it owns one [`PlanCache`] shared by every
//! request, so concurrent tenants factoring the same tile structure pay
//! the symbolic phase once, and it gates admission so one tenant cannot
//! starve the others — a per-tenant in-flight cap and a per-tenant
//! memory budget accounted in [`KernelWorkspace`](tlr_compress::kernels::KernelWorkspace) arena bytes
//! (the recompression scratch pools are the dominant transient
//! allocation of a factorization; tile storage itself belongs to the
//! caller's matrix). Over-limit requests are rejected *before* any
//! kernel runs, with a typed [`ServiceError`] carrying the numbers that
//! drove the decision.
//!
//! Admission charges a worst-case arena estimate
//! ([`SolveService::arena_estimate_bytes`]) and releases it when the
//! request finishes; the *measured* per-request high-water mark (from
//! the run's metrics registry) is folded into [`TenantUsage`] so
//! operators can see how much headroom the estimate leaves. The
//! service-level registry exports `service_requests_admitted` /
//! `service_requests_rejected` and the plan-cache counters through the
//! same Prometheus/JSON renderers as every other metric
//! ([`SolveService::registry_snapshot`]).
//!
//! Requests run on [`Session::shared`] — the work-stealing engine
//! multiplexes tenants' tasks across one pool, which is the scenario
//! the in-flight cap exists for. Distributed sessions emulate ranks in
//! virtual time and have no shared arena to meter; they compose with a
//! [`PlanCache`] directly instead.

use crate::factorize::{FactorConfig, FactorReport};
use crate::plan::PlanCache;
use crate::session::{RunError, RunOutcome, Session};
use crate::solve::solve_tlr;
use parking_lot::Mutex;
use runtime::obs::registry::{Counter, Gauge, Registry, RegistrySnapshot};
use std::collections::HashMap;
use std::fmt;
use tlr_compress::TlrMatrix;

/// Per-tenant admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Maximum concurrently running requests. `0` rejects everything
    /// (useful to drain a tenant).
    pub max_in_flight: usize,
    /// Kernel-workspace arena budget in bytes, across the tenant's
    /// in-flight requests. Each request is charged its worst-case
    /// estimate at admission.
    pub memory_budget_bytes: u64,
}

/// Live accounting for one tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Requests currently running.
    pub in_flight: usize,
    /// Arena bytes currently charged against the budget.
    pub in_use_bytes: u64,
    /// Largest *measured* per-request arena high-water mark seen so far
    /// (0 until a request runs with metrics on).
    pub peak_arena_bytes: u64,
    /// Requests admitted so far.
    pub admitted: u64,
    /// Requests rejected so far (any reason).
    pub rejected: u64,
}

struct TenantState {
    cfg: TenantConfig,
    usage: TenantUsage,
}

/// Why the service refused (or failed) a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The tenant was never registered.
    UnknownTenant(String),
    /// The tenant is already running its maximum concurrent requests.
    InFlightLimit {
        /// The rejected tenant.
        tenant: String,
        /// Its configured cap.
        limit: usize,
    },
    /// Admitting the request would exceed the tenant's arena budget.
    MemoryBudget {
        /// The rejected tenant.
        tenant: String,
        /// Worst-case arena bytes this request would charge.
        requested: u64,
        /// The tenant's configured budget.
        budget: u64,
        /// Bytes already charged by its in-flight requests.
        in_use: u64,
    },
    /// The request was admitted but the factorization failed.
    Run(RunError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            ServiceError::InFlightLimit { tenant, limit } => {
                write!(f, "tenant {tenant:?} is at its in-flight limit ({limit})")
            }
            ServiceError::MemoryBudget {
                tenant,
                requested,
                budget,
                in_use,
            } => write!(
                f,
                "tenant {tenant:?} over memory budget: request needs {requested} B, \
                 {in_use} B of {budget} B already in use"
            ),
            ServiceError::Run(e) => write!(f, "admitted request failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<RunError> for ServiceError {
    fn from(e: RunError) -> Self {
        ServiceError::Run(e)
    }
}

/// What an admitted request produced.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The full factorization outcome (report, metrics registry, …).
    pub run: RunOutcome,
    /// The solution vector, when a right-hand side was supplied.
    pub solution: Option<Vec<f64>>,
    /// Worst-case arena bytes this request was charged at admission.
    pub charged_bytes: u64,
    /// Measured arena high-water bytes of this request (summed
    /// per-worker bound; 0 with metrics off). Always ≤ `charged_bytes`
    /// — the admission estimate is a proven upper bound, which is what
    /// makes the budget enforceable.
    pub measured_bytes: u64,
}

/// A long-lived, multi-tenant TLR solver front-end.
///
/// Thread-safe by construction: every entry point takes `&self`, so one
/// `SolveService` (behind an `Arc` or a `static`) serves concurrent
/// requests from many threads. See the module docs for the admission
/// model.
pub struct SolveService {
    cache: PlanCache,
    registry: Registry,
    tenants: Mutex<HashMap<String, TenantState>>,
    /// Plan-cache totals already folded into `registry`, so repeated
    /// snapshots report deltas exactly once.
    cache_synced: Mutex<(u64, u64, u64)>,
}

impl SolveService {
    /// A service whose shared [`PlanCache`] holds up to
    /// `cache_capacity` plans.
    pub fn new(cache_capacity: usize) -> Self {
        SolveService {
            cache: PlanCache::new(cache_capacity),
            registry: Registry::new(1),
            tenants: Mutex::new(HashMap::new()),
            cache_synced: Mutex::new((0, 0, 0)),
        }
    }

    /// Register (or reconfigure) a tenant. Reconfiguring keeps the
    /// tenant's live accounting — only the limits change.
    pub fn register_tenant(&self, name: &str, cfg: TenantConfig) {
        let mut tenants = self.tenants.lock();
        match tenants.get_mut(name) {
            Some(st) => st.cfg = cfg,
            None => {
                tenants.insert(
                    name.to_string(),
                    TenantState {
                        cfg,
                        usage: TenantUsage::default(),
                    },
                );
            }
        }
    }

    /// The shared plan cache (e.g. to pre-warm it with
    /// [`Session::plan`] results or read hit totals).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Live accounting for `tenant`, if registered.
    pub fn usage(&self, tenant: &str) -> Option<TenantUsage> {
        self.tenants.lock().get(tenant).map(|st| st.usage)
    }

    /// Worst-case [`KernelWorkspace`](tlr_compress::kernels::KernelWorkspace) arena bytes a factorization with
    /// `nthreads` workers on `tile_size`-row tiles can retain: each
    /// worker's pools hold a handful of `tile_size²` scratch/export
    /// buffers plus the SVD pair at their high-water marks.
    ///
    /// This is the amount admission charges against the tenant budget.
    /// `tests/solve_service.rs` holds the bound against the measured
    /// high-water of real factorizations.
    pub fn arena_estimate_bytes(nthreads: usize, tile_size: usize) -> u64 {
        let b = tile_size as u64;
        (nthreads.max(1) as u64) * (16 * b * b + 4 * b) * 8
    }

    /// Factor `matrix` on behalf of `tenant` (admission-gated; see the
    /// module docs), optionally solving `L·Lᵀ·x = rhs` with the fresh
    /// factor. `rhs` must have one entry per matrix row.
    ///
    /// Metrics collection is forced on for admitted requests — the
    /// measured arena high-water mark is part of the budget contract.
    pub fn factorize_and_solve(
        &self,
        tenant: &str,
        cfg: &FactorConfig,
        matrix: &mut TlrMatrix,
        rhs: Option<&[f64]>,
    ) -> Result<SolveOutcome, ServiceError> {
        let charged = Self::arena_estimate_bytes(cfg.nthreads, matrix.tile_size());
        self.admit(tenant, charged)?;
        // The arena charge is released however the run ends.
        let result = (|| {
            let mut run_cfg = *cfg;
            run_cfg.collect_metrics = true;
            let run = Session::shared(run_cfg)
                .with_plan_cache(&self.cache)
                .run(matrix)?;
            let solution = rhs.map(|b| {
                let mut x = b.to_vec();
                solve_tlr(matrix, &mut x);
                x
            });
            Ok::<_, RunError>((run, solution))
        })();
        let measured = result
            .as_ref()
            .ok()
            .and_then(|(run, _)| run.registry.as_ref())
            .map(|snap| {
                // `ArenaHighWaterBytes` merges as a per-worker max;
                // summing over the pool bounds the request's total.
                (snap.gauge(Gauge::ArenaHighWaterBytes) * cfg.nthreads.max(1) as f64) as u64
            })
            .unwrap_or(0);
        self.release(tenant, charged, measured);
        self.sync_cache_counters();
        let (run, solution) = result?;
        Ok(SolveOutcome {
            run,
            solution,
            charged_bytes: charged,
            measured_bytes: measured,
        })
    }

    /// [`factorize_and_solve`](SolveService::factorize_and_solve)
    /// without a right-hand side.
    pub fn factorize(
        &self,
        tenant: &str,
        cfg: &FactorConfig,
        matrix: &mut TlrMatrix,
    ) -> Result<FactorReport, ServiceError> {
        self.factorize_and_solve(tenant, cfg, matrix, None)
            .map(|out| out.run.report)
    }

    /// Snapshot the service-level registry: admission counters plus the
    /// plan cache's hit/miss/eviction totals, rendered by the same
    /// Prometheus/JSON exporters as every run registry.
    pub fn registry_snapshot(&self) -> RegistrySnapshot {
        self.sync_cache_counters();
        self.registry.snapshot()
    }

    /// Charge `tenant` for one request of `charged` arena bytes, or
    /// reject with the reason.
    fn admit(&self, tenant: &str, charged: u64) -> Result<(), ServiceError> {
        let mut tenants = self.tenants.lock();
        let Some(st) = tenants.get_mut(tenant) else {
            drop(tenants);
            self.registry.incr(0, Counter::ServiceRequestsRejected);
            return Err(ServiceError::UnknownTenant(tenant.to_string()));
        };
        if st.usage.in_flight >= st.cfg.max_in_flight {
            st.usage.rejected += 1;
            self.registry.incr(0, Counter::ServiceRequestsRejected);
            return Err(ServiceError::InFlightLimit {
                tenant: tenant.to_string(),
                limit: st.cfg.max_in_flight,
            });
        }
        if st.usage.in_use_bytes.saturating_add(charged) > st.cfg.memory_budget_bytes {
            st.usage.rejected += 1;
            self.registry.incr(0, Counter::ServiceRequestsRejected);
            return Err(ServiceError::MemoryBudget {
                tenant: tenant.to_string(),
                requested: charged,
                budget: st.cfg.memory_budget_bytes,
                in_use: st.usage.in_use_bytes,
            });
        }
        st.usage.in_flight += 1;
        st.usage.in_use_bytes += charged;
        st.usage.admitted += 1;
        self.registry.incr(0, Counter::ServiceRequestsAdmitted);
        Ok(())
    }

    /// Release an admitted request's charge and fold in its measured
    /// arena peak.
    fn release(&self, tenant: &str, charged: u64, measured: u64) {
        let mut tenants = self.tenants.lock();
        if let Some(st) = tenants.get_mut(tenant) {
            st.usage.in_flight -= 1;
            st.usage.in_use_bytes = st.usage.in_use_bytes.saturating_sub(charged);
            st.usage.peak_arena_bytes = st.usage.peak_arena_bytes.max(measured);
        }
    }

    /// Fold the plan cache's monotone totals into the service registry
    /// as deltas since the last sync.
    fn sync_cache_counters(&self) {
        let mut seen = self.cache_synced.lock();
        let now = (
            self.cache.hits(),
            self.cache.misses(),
            self.cache.evictions(),
        );
        self.registry
            .add(0, Counter::PlanCacheHits, now.0.saturating_sub(seen.0));
        self.registry
            .add(0, Counter::PlanCacheMisses, now.1.saturating_sub(seen.1));
        self.registry
            .add(0, Counter::PlanCacheEvictions, now.2.saturating_sub(seen.2));
        *seen = now;
    }
}

impl fmt::Debug for SolveService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolveService")
            .field("cache", &self.cache)
            .field("tenants", &self.tenants.lock().len())
            .finish()
    }
}

//! One factorization session over the unified runtime engines.
//!
//! [`Session`] is the single entry point behind every TLR Cholesky
//! front-end in this crate. A session owns the whole per-attempt
//! pipeline — DAG build, tile placement (`plan_distribution` on
//! distributed runs), kernel dispatch, engine execution, and tile
//! gathering — plus the diagonal-shift retry driver that used to live
//! only on the shared-memory path. The public wrappers
//! ([`factorize`](crate::factorize::factorize) and the deprecated
//! `factorize_distributed*` family) are one-call shims over it.
//!
//! Capabilities compose instead of multiplying entry points: a
//! distributed session layers a fault plan with
//! [`with_fault_layer`](Session::with_fault_layer) and still reports
//! communication volume and (in `obs` builds) a virtual-time trace —
//! the FT + trace + comm-counted combination the old
//! `factorize_distributed{_counted,_ft}` trio could not express. Every
//! mode returns the same [`RunOutcome`]; absent capabilities are `None`.
//!
//! The per-attempt pipeline is split into a *symbolic* phase — DAG
//! build, distribution mapping, batching, scheduler precomputation,
//! packaged as an immutable [`SymbolicPlan`] — and a *numeric* phase
//! that consumes a `&SymbolicPlan` ([`Session::run_with_plan`]).
//! [`Session::run`] remains the one-shot shim: plan (or fetch from an
//! attached [`PlanCache`]) then run. Repeated solves on one tile
//! structure therefore pay the symbolic cost once.

use crate::dag::TaskKind;
use crate::distributed::{gather_tiles, kernel_env, scatter_tiles, FtFactorOutcome};
use crate::drift::{DriftReport, DriftSpec};
use crate::factorize::{FactorConfig, FactorMetrics, FactorReport, IntegrityMode};
use crate::plan::{self, CacheEvents, PlanCache, PlanKey, SymbolicPlan};
use crate::replan::CommReplanner;
use distribution::TileDistribution;
use parking_lot::{Mutex, RwLock};
use runtime::critical_path::critical_path;
use runtime::des::CommStats;
use runtime::engine::{
    DistConfig, DistEngine, DistOutcome, Engine, EngineConfig, EngineError, ExecObs,
    IntegrityHooks, Observe,
};
use runtime::fault::{FtConfig, FtError, IntegrityError};
use runtime::graph::{DataRef, TaskClass};
use runtime::obs::registry::{Counter, Gauge, Registry, RegistrySnapshot};
use runtime::trace::{ClassBreakdown, Trace};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tlr_compress::kernels::{
    gemm_kernel_ws, potrf_kernel, syrk_kernel_ws, trsm_kernel, KernelWorkspace,
};
use tlr_compress::{RankEvolution, RankSnapshot, SealedTile, Tile, TileDigest, TlrMatrix};
use tlr_linalg::CholeskyError;

/// Where a session executes.
enum Mode<'a> {
    /// Work-stealing thread pool in one address space
    /// ([`runtime::engine::Engine`]).
    Shared,
    /// Emulated distributed-memory ranks in virtual time
    /// ([`runtime::engine::DistEngine`]), optionally under a fault plan.
    Distributed {
        nprocs: usize,
        exec: &'a dyn TileDistribution,
        ft: Option<&'a FtConfig>,
        replan: Option<&'a RefCell<CommReplanner>>,
    },
}

/// A configured TLR Cholesky run (shared-memory or distributed).
///
/// Build one with [`Session::shared`] or [`Session::distributed`],
/// optionally layer capabilities
/// ([`with_fault_layer`](Session::with_fault_layer)), then
/// [`run`](Session::run) it against a
/// matrix. The session is reusable: `run` borrows it immutably, so the
/// same configuration can factor many matrices.
pub struct Session<'a> {
    cfg: FactorConfig,
    mode: Mode<'a>,
    drift: Option<DriftSpec>,
    cache: Option<&'a PlanCache>,
    replan_slack: Option<f64>,
}

impl<'a> Session<'a> {
    /// A shared-memory session on the work-stealing engine.
    pub fn shared(cfg: FactorConfig) -> Self {
        Session {
            cfg,
            mode: Mode::Shared,
            drift: None,
            cache: None,
            replan_slack: None,
        }
    }

    /// A distributed session across `nprocs` emulated ranks. `exec` maps
    /// each tile to the rank executing the tasks that write it (pass the
    /// data distribution itself for owner-computes, or a remapping
    /// distribution for §VII-B execution dissociation).
    pub fn distributed(cfg: FactorConfig, nprocs: usize, exec: &'a dyn TileDistribution) -> Self {
        Session {
            cfg,
            mode: Mode::Distributed {
                nprocs,
                exec,
                ft: None,
                replan: None,
            },
            drift: None,
            cache: None,
            replan_slack: None,
        }
    }

    /// Layer a fault plan + retry policy onto a distributed session: the
    /// run then injects the plan's message loss, duplication, delay
    /// jitter, rank crashes, kernel failures and silent data corruption
    /// (bit-flips in store tiles or message payloads — these arm the
    /// tile-integrity layer automatically), recovers from them, and
    /// reports the accounting in [`RunOutcome::ft`]. The factor stays
    /// bit-identical to the fault-free run for any survivable plan.
    ///
    /// Fault injection is a distributed-memory concept; on a shared
    /// session this is a documented no-op.
    pub fn with_fault_layer(mut self, ft_cfg: &'a FtConfig) -> Self {
        if let Mode::Distributed { ft, .. } = &mut self.mode {
            *ft = Some(ft_cfg);
        }
        self
    }

    /// Layer a comm-feedback re-planner onto a distributed session: each
    /// run plans its tile placement with the replanner's current
    /// overrides, and after a successful run feeds the measured
    /// [`CommStats`] back ([`CommReplanner::observe`]) so repeated
    /// solves on the same geometry converge to a lower-traffic mapping.
    /// The factor stays bit-identical — re-planning only moves whole
    /// tile write-chains between ranks, never changes what they compute.
    ///
    /// Re-planning is a distributed-memory concept; on a shared session
    /// this is a documented no-op.
    ///
    /// Because the override state lives *outside* the session, every run
    /// must re-plan from scratch against the cell's current contents —
    /// runs through this path bypass any attached [`PlanCache`]. Prefer
    /// [`with_replanning`](Session::with_replanning), which embeds the
    /// re-planner state in the (cacheable) plan itself.
    #[deprecated(note = "use `with_replanning(slack)` — the re-planner state then lives \
                         in the cached `SymbolicPlan` instead of an external `RefCell`")]
    pub fn with_replanner(mut self, replanner: &'a RefCell<CommReplanner>) -> Self {
        if let Mode::Distributed { replan, .. } = &mut self.mode {
            *replan = Some(replanner);
        }
        self
    }

    /// Embed a comm-feedback re-planner in the session's plan: the
    /// [`CommReplanner`] (with the given compute-imbalance `slack`, see
    /// [`CommReplanner::with_slack`]) is created at plan-build time and
    /// travels *with* the [`SymbolicPlan`] — when the plan is cached,
    /// converged placement overrides persist across runs and sessions
    /// sharing the cache, instead of being threaded through a per-call
    /// `RefCell`. After each successful run the measured [`CommStats`]
    /// feed back and, if the re-planner moves a tile chain, the plan's
    /// distribution mapping is refreshed in place (the DAG is not
    /// rebuilt).
    ///
    /// Re-planning is a distributed-memory concept; on a shared session
    /// this is a documented no-op.
    pub fn with_replanning(mut self, slack: f64) -> Self {
        if matches!(self.mode, Mode::Distributed { .. }) {
            self.replan_slack = Some(slack);
        }
        self
    }

    /// Attach a [`PlanCache`]: [`run`](Session::run) then fetches its
    /// [`SymbolicPlan`] by structural fingerprint instead of re-running
    /// the symbolic phase, and inserts freshly built plans for later
    /// runs. Cache activity is reported in the run's metrics registry
    /// (`plan_cache_hits` / `plan_cache_misses` / `plan_cache_evictions`).
    pub fn with_plan_cache(mut self, cache: &'a PlanCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Layer a cost-model drift report onto the session: after a
    /// successful run, [`RunOutcome::drift`] compares the machine
    /// model's per-class predicted busy time (and, on distributed runs,
    /// the exact comm model) against what the run's metrics registry
    /// measured. Requires
    /// [`collect_metrics`](FactorConfig::collect_metrics) — with the
    /// registry off there is nothing to compare against and the report
    /// stays `None`.
    pub fn with_drift(mut self, spec: DriftSpec) -> Self {
        self.drift = Some(spec);
        self
    }

    /// The factorization options this session runs with.
    pub fn config(&self) -> &FactorConfig {
        &self.cfg
    }

    /// Factor `matrix = L·Lᵀ` in place (lower tiles become `L`).
    ///
    /// Owns the diagonal-shift retry driver for *every* mode: on a pivot
    /// failure, and if `cfg.max_shift_retries > 0`, the original matrix
    /// is restored and re-factored as `A + εI` with `ε` escalating ×10
    /// from `mean|diag| · max(accuracy, 1e-12)`. The shift that rescued
    /// the run is reported in [`FactorReport::diagonal_shift`]. If every
    /// attempt fails the error carries the *smallest* failing pivot seen
    /// and the matrix is restored to its input state (without retries it
    /// keeps the partial factor, as before).
    ///
    /// Engine faults ([`RunError::Engine`]) are not retried — a kernel
    /// panic or an unsurvivable fault plan is deterministic, so a replay
    /// would fail identically. After an engine fault on a distributed
    /// run the matrix contents are unspecified (tiles may be stranded on
    /// dead emulated ranks).
    pub fn run(&self, matrix: &mut TlrMatrix) -> Result<RunOutcome, RunError> {
        let t0 = std::time::Instant::now();
        let snapshot = matrix.rank_snapshot();
        // The deprecated external-`RefCell` re-planner changes its
        // overrides between calls, outside the plan — such plans are
        // transient by construction and bypass the cache.
        let legacy_replan = matches!(
            self.mode,
            Mode::Distributed {
                replan: Some(_),
                ..
            }
        );
        let (plan, ev) = match self.cache {
            Some(cache) if !legacy_replan => {
                let key = plan::plan_key(&self.cfg, &snapshot, self.dist_inputs().as_ref());
                cache.get_or_build(&key, || self.build_plan(&snapshot))?
            }
            _ => (Arc::new(self.build_plan(&snapshot)?), CacheEvents::default()),
        };
        // Cold runs report the symbolic-phase cost here; warm-cache runs
        // report the (near-zero) key fold + lookup instead.
        let analysis_seconds = t0.elapsed().as_secs_f64();
        self.run_driver(&plan, matrix, ev, analysis_seconds)
    }

    /// Run the symbolic phase alone: build the [`SymbolicPlan`] this
    /// session would execute `matrix` with, without factoring anything.
    /// The plan is self-contained (no borrow of the matrix or the
    /// distribution survives) and reusable across any number of
    /// [`run_with_plan`](Session::run_with_plan) calls and matrices that
    /// share the same structural fingerprint.
    pub fn plan(&self, matrix: &TlrMatrix) -> Result<SymbolicPlan, RunError> {
        self.build_plan(&matrix.rank_snapshot())
    }

    /// The numeric phase alone: factor `matrix` through a prebuilt
    /// [`SymbolicPlan`], skipping DAG construction, distribution
    /// mapping, batching and scheduler precomputation entirely. The
    /// plan's [`PlanKey`] must match this matrix and session
    /// configuration — a mismatch is rejected as
    /// [`RunError::PlanMismatch`] (running a stale plan would misplace
    /// tiles or deadlock rank queues). The produced factor is
    /// bit-identical to [`run`](Session::run) without a plan.
    pub fn run_with_plan(
        &self,
        plan: &SymbolicPlan,
        matrix: &mut TlrMatrix,
    ) -> Result<RunOutcome, RunError> {
        let t0 = std::time::Instant::now();
        let key = plan::plan_key(&self.cfg, &matrix.rank_snapshot(), self.dist_inputs().as_ref());
        if key != plan.key {
            return Err(RunError::PlanMismatch {
                plan: Box::new(plan.key),
                requested: Box::new(key),
            });
        }
        let analysis_seconds = t0.elapsed().as_secs_f64();
        self.run_driver(plan, matrix, CacheEvents::default(), analysis_seconds)
    }

    /// The distributed-plan inputs of this session's mode (`None` for
    /// shared memory).
    fn dist_inputs(&self) -> Option<plan::DistPlanInputs<'_>> {
        match &self.mode {
            Mode::Shared => None,
            Mode::Distributed {
                nprocs,
                exec,
                ft,
                replan,
            } => {
                let verify = self.cfg.integrity != IntegrityMode::Off
                    || ft.is_some_and(|f| f.plan.injects_corruption());
                let trace = self.cfg.collect_trace && ExecObs::enabled();
                let overrides = replan
                    .map(|r| r.borrow().overrides().clone())
                    .unwrap_or_default();
                Some(plan::DistPlanInputs {
                    nprocs: *nprocs,
                    exec: *exec,
                    ft: ft.is_some(),
                    verify,
                    trace,
                    overrides,
                    replan_slack: self.replan_slack,
                })
            }
        }
    }

    fn build_plan(&self, snapshot: &RankSnapshot) -> Result<SymbolicPlan, RunError> {
        plan::build_plan(&self.cfg, snapshot, self.dist_inputs()).map_err(RunError::Engine)
    }

    /// Diagonal-shift retry driver over one plan. The shift perturbs
    /// values, never the rank structure, so one symbolic plan serves
    /// every attempt. Cache activity is recorded on the first attempt
    /// only.
    fn run_driver(
        &self,
        plan: &SymbolicPlan,
        matrix: &mut TlrMatrix,
        ev: CacheEvents,
        analysis_seconds: f64,
    ) -> Result<RunOutcome, RunError> {
        let cfg = &self.cfg;
        let pristine = if cfg.max_shift_retries > 0 {
            Some(matrix.clone())
        } else {
            None
        };
        let first_err = match self.attempt(plan, matrix, ev, analysis_seconds) {
            Ok(out) => return Ok(out),
            Err(RunError::Numeric(e)) => e,
            Err(e) => return Err(e),
        };
        let Some(pristine) = pristine else {
            return Err(RunError::Numeric(first_err));
        };
        let base = pristine.diagonal_mean_abs() * cfg.accuracy.max(1e-12);
        let mut shift = base;
        // Keep the *smallest* failing pivot across attempts — the caller
        // must see a deterministic (earliest) pivot, not whichever
        // attempt failed last.
        let mut best_err = first_err;
        for attempt in 1..=cfg.max_shift_retries {
            *matrix = pristine.clone();
            matrix.shift_diagonal(shift);
            match self.attempt(plan, matrix, CacheEvents::default(), analysis_seconds) {
                Ok(mut out) => {
                    out.report.diagonal_shift = shift;
                    out.report.shift_attempts = attempt;
                    return Ok(out);
                }
                Err(RunError::Numeric(e)) => {
                    if e.pivot < best_err.pivot {
                        best_err = e;
                    }
                }
                Err(e) => return Err(e),
            }
            shift *= 10.0;
        }
        *matrix = pristine;
        Err(RunError::Numeric(best_err))
    }

    /// One factorization attempt on the matrix as-is, through the plan.
    fn attempt(
        &self,
        plan: &SymbolicPlan,
        matrix: &mut TlrMatrix,
        ev: CacheEvents,
        analysis_seconds: f64,
    ) -> Result<RunOutcome, RunError> {
        let drift = self.drift.as_ref();
        match self.mode {
            Mode::Shared => shared_attempt(matrix, &self.cfg, plan, drift, ev, analysis_seconds),
            Mode::Distributed {
                nprocs, ft, replan, ..
            } => distributed_attempt(
                matrix,
                &self.cfg,
                nprocs,
                ft,
                replan,
                plan,
                drift,
                ev,
                analysis_seconds,
            ),
        }
    }
}

impl fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Session");
        d.field("cfg", &self.cfg);
        match &self.mode {
            Mode::Shared => d.field("mode", &"shared"),
            Mode::Distributed {
                nprocs,
                exec,
                ft,
                replan,
            } => d
                .field("mode", &"distributed")
                .field("nprocs", nprocs)
                .field("exec", &exec.name())
                .field("fault_layer", &ft.is_some())
                .field("replanner", &replan.is_some()),
        };
        d.field("plan_cache", &self.cache.is_some());
        d.field("replanning", &self.replan_slack.is_some());
        d.finish()
    }
}

/// Everything a [`Session::run`] produced. Capabilities the session did
/// not have are `None`; everything else comes from the same single run —
/// no combination requires a second factorization.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The factor report (always present). On distributed runs the
    /// kernel-class [`FactorReport::breakdown`] is zero (kernels execute
    /// inside a virtual-time event loop, where wall-clock attribution
    /// would be misleading) and [`FactorReport::metrics`] is `None` —
    /// the virtual-time trace lives in [`RunOutcome::trace`] instead.
    pub report: FactorReport,
    /// Cross-rank communication actually incurred, retransmissions
    /// included (distributed sessions; `None` on shared-memory runs,
    /// which have no wire).
    pub comm: Option<CommStats>,
    /// Fault-injection and recovery accounting, when a fault layer was
    /// configured with [`Session::with_fault_layer`].
    pub ft: Option<FtFactorOutcome>,
    /// Virtual-time execution trace of a distributed run, when
    /// [`FactorConfig::collect_trace`] is set in an `obs` build.
    /// Shared-memory traces live in [`FactorReport::metrics`].
    pub trace: Option<Trace>,
    /// Merged always-on metrics registry snapshot, when
    /// [`FactorConfig::collect_metrics`] is set. Present (possibly
    /// empty) even in builds with the runtime's `metrics` feature
    /// disabled, so callers never need a `cfg` gate.
    pub registry: Option<RegistrySnapshot>,
    /// Cost-model drift report, when the session was configured with
    /// [`Session::with_drift`] *and* the registry was collected.
    pub drift: Option<DriftReport>,
}

/// Why a [`Session::run`] failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The matrix is numerically not positive definite (pivot failure
    /// after any configured shift retries).
    Numeric(CholeskyError),
    /// The engine could not complete the run: a kernel panicked, the
    /// graph/configuration was invalid, or a fault plan was not
    /// survivable. Not retried — see [`Session::run`].
    Engine(EngineError),
    /// A prebuilt [`SymbolicPlan`] handed to
    /// [`Session::run_with_plan`] was built for a different matrix
    /// structure or session configuration. Running it anyway would
    /// misplace tiles or deadlock rank queues, so the mismatch is
    /// rejected up front with both fingerprints.
    PlanMismatch {
        /// Fingerprint the plan was built for.
        plan: Box<PlanKey>,
        /// Fingerprint of the requested run.
        requested: Box<PlanKey>,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Numeric(e) => write!(f, "matrix is not positive definite: {e:?}"),
            RunError::Engine(e) => write!(f, "engine failure: {e}"),
            RunError::PlanMismatch { plan, requested } => write!(
                f,
                "symbolic plan does not match this matrix/session configuration \
                 (plan {plan:?}, requested {requested:?})"
            ),
        }
    }
}

impl std::error::Error for RunError {}

impl From<CholeskyError> for RunError {
    fn from(e: CholeskyError) -> Self {
        RunError::Numeric(e)
    }
}

impl From<EngineError> for RunError {
    fn from(e: EngineError) -> Self {
        RunError::Engine(e)
    }
}

/// One shared-memory attempt on the work-stealing [`Engine`].
///
/// Kernel panics are drained by the engine (no hung pool) and surface
/// as [`RunError::Engine`]; the tiles are moved back into the matrix
/// first, so locks are released, but mid-kernel tile state is
/// unspecified after a panic.
fn shared_attempt(
    matrix: &mut TlrMatrix,
    cfg: &FactorConfig,
    plan: &SymbolicPlan,
    drift: Option<&DriftSpec>,
    ev: CacheEvents,
    analysis_seconds: f64,
) -> Result<RunOutcome, RunError> {
    let nt = matrix.nt();
    let memory_before_f64 = matrix.memory_f64();
    // The symbolic phase already ran: the trimmed DAG, the contracted
    // panel-batch graph and the scheduler tables all come off the plan.
    let dag = &plan.dag;
    let pb = plan.batch.as_ref();
    let sched_plan = plan
        .sched
        .as_ref()
        .expect("shared plans carry scheduler state");

    // Move the tiles into lock cells for concurrent kernel execution.
    let tile_size = matrix.tile_size();
    let lower = |i: usize, j: usize| i * (i + 1) / 2 + j;
    let mut cells: Vec<RwLock<Tile>> = Vec::with_capacity(nt * (nt + 1) / 2);
    for i in 0..nt {
        for j in 0..=i {
            cells.push(RwLock::new(matrix.take_tile(i, j)));
        }
    }

    // Exact-digest side array for the integrity layer (off by default):
    // one digest per packed-lower tile, sealed at load time. Under
    // `Maintain` a tile is resealed only at its *finalizing* write — the
    // POTRF (diagonal) or TRSM (off-diagonal) that produces its factor
    // value — because nothing ever reads the digest of an in-progress
    // GEMM/SYRK version: the end-of-run sweep only sees final states, so
    // intermediate reseals would cost a digest per update and buy zero
    // detection. Under `VerifyReads` every write reseals and each
    // version is verified at its first read boundary, before it can
    // propagate. There is no lineage store on the shared path — every
    // tile version lives exactly once behind its lock — so a mismatch
    // cancels the run and surfaces as a typed integrity error instead of
    // healing.
    struct DigestSlot {
        d: TileDigest,
        /// Whether the current version already passed its first-read
        /// check (`VerifyReads` verifies each version once — later reads
        /// see the same just-verified bytes).
        checked: bool,
    }
    let digests: Option<Vec<Mutex<DigestSlot>>> =
        (cfg.integrity != IntegrityMode::Off).then(|| {
            cells
                .iter()
                .map(|c| {
                    Mutex::new(DigestSlot {
                        d: TileDigest::of(&c.read()),
                        checked: false,
                    })
                })
                .collect()
        });
    let verify_reads = cfg.integrity == IntegrityMode::VerifyReads;

    let compression = cfg.compression();
    let error: Mutex<Option<CholeskyError>> = Mutex::new(None);
    // Flipped on the first pivot failure: the engine then drains the
    // remaining tasks without invoking their kernels at all.
    let cancel = AtomicBool::new(false);
    // Record a pivot failure keeping the *smallest* pivot — several POTRFs
    // can fail concurrently before the cancellation flag propagates, and
    // the caller must see a deterministic (earliest) pivot, not whichever
    // failure happened to be stored last.
    let record_error = |e: CholeskyError| {
        let mut slot = error.lock();
        match &*slot {
            Some(prev) if prev.pivot <= e.pivot => {}
            _ => *slot = Some(e),
        }
        cancel.store(true, Ordering::Release);
    };
    // First corrupted tile, kept at the smallest packed index so
    // concurrent detections report deterministically (same discipline as
    // the pivot error above).
    let integrity_bad: Mutex<Option<(usize, usize)>> = Mutex::new(None);
    let record_corruption = |i: usize, j: usize| {
        let mut slot = integrity_bad.lock();
        match &*slot {
            Some(prev) if *prev <= (i, j) => {}
            _ => *slot = Some((i, j)),
        }
        cancel.store(true, Ordering::Release);
    };
    let check = |i: usize, j: usize, t: &Tile| -> bool {
        if !verify_reads {
            return true;
        }
        let Some(ds) = &digests else { return true };
        let mut slot = ds[lower(i, j)].lock();
        if slot.checked {
            return true;
        }
        if slot.d.verify(t) {
            slot.checked = true;
            return true;
        }
        drop(slot);
        record_corruption(i, j);
        false
    };
    let reseal = |i: usize, j: usize, t: &Tile| {
        if let Some(ds) = &digests {
            *ds[lower(i, j)].lock() = DigestSlot {
                d: TileDigest::of(t),
                checked: false,
            };
        }
    };
    // Per-class busy nanoseconds (atomic adds via mutex; kernel times are
    // micro-to-milliseconds, contention is negligible).
    let class_nanos: Mutex<[u128; 5]> = Mutex::new([0; 5]);
    // One workspace arena per engine worker, indexed by the worker id the
    // engine hands us — exclusive by construction, so the Mutex is never
    // contended (it only satisfies the `Sync` bound of the kernel
    // closure). Buffers grow to their high-water mark over the first few
    // updates and the recompression hot path then runs allocation-free
    // for the rest of the factorization.
    let nthreads = cfg.nthreads.max(1);
    let workspaces: Vec<Mutex<KernelWorkspace>> = (0..nthreads)
        .map(|_| Mutex::new(KernelWorkspace::new()))
        .collect();

    // Span recorder (compiled to nothing without the `obs` feature). The
    // per-worker logs are preallocated here, so tracing costs no
    // steady-state allocations on the kernel hot path.
    let obs = if cfg.collect_trace && ExecObs::enabled() {
        Some(ExecObs::new(dag.graph.len(), nthreads))
    } else {
        None
    };
    // Always-on metrics registry, one shard per worker. Recording is a
    // few relaxed atomic adds per task; with the runtime's `metrics`
    // feature off the calls are no-ops and the snapshot merges empty.
    let registry = cfg.collect_metrics.then(|| Registry::new(nthreads));
    if let Some(reg) = &registry {
        reg.add(0, Counter::PlanCacheHits, ev.hits);
        reg.add(0, Counter::PlanCacheMisses, ev.misses);
        reg.add(0, Counter::PlanCacheEvictions, ev.evictions);
    }

    let exec_t0 = std::time::Instant::now();
    // One kernel dispatch per *original* task — both the plain and the
    // batched engine run below call this, so batching can never change
    // what a task computes.
    let run_task = |wid: usize, t: usize| {
        if cancel.load(Ordering::Acquire) {
            return; // in-flight task raced with the cancellation flag
        }
        let started = std::time::Instant::now();
        let class = dag.graph.spec(t).class;
        match dag.kinds[t] {
            TaskKind::Potrf { k } => {
                let mut c = cells[lower(k, k)].write();
                if !check(k, k, &c) {
                    return;
                }
                if let Err(e) = potrf_kernel(&mut c) {
                    record_error(CholeskyError {
                        pivot: k * tile_size + e.pivot,
                    });
                    return;
                }
                reseal(k, k, &c);
            }
            TaskKind::Trsm { k, m } => {
                // lock order: (k,k) < (m,k) in packed order (k < m)
                let l = cells[lower(k, k)].read();
                let mut a = cells[lower(m, k)].write();
                if !(check(k, k, &l) && check(m, k, &a)) {
                    return;
                }
                trsm_kernel(&l, &mut a);
                reseal(m, k, &a);
            }
            TaskKind::Syrk { k, m } => {
                let a = cells[lower(m, k)].read();
                let mut c = cells[lower(m, m)].write();
                if !(check(m, k, &a) && check(m, m, &c)) {
                    return;
                }
                syrk_kernel_ws(&mut workspaces[wid].lock(), &a, &mut c);
                // Intermediate version: POTRF {m} reseals the final one.
                if verify_reads {
                    reseal(m, m, &c);
                }
            }
            TaskKind::Gemm { k, m, n } => {
                // packed order: (n,k) < (m,k) < (m,n) since k < n < m
                let bt = cells[lower(n, k)].read();
                let at = cells[lower(m, k)].read();
                let mut c = cells[lower(m, n)].write();
                if !(check(n, k, &bt) && check(m, k, &at) && check(m, n, &c)) {
                    return;
                }
                gemm_kernel_ws(&mut workspaces[wid].lock(), &at, &bt, &mut c, &compression);
                // Intermediate version: TRSM {n, m} reseals the final one.
                if verify_reads {
                    reseal(m, n, &c);
                }
            }
        }
        #[cfg(debug_assertions)]
        if !cancel.load(Ordering::Acquire) {
            // Pin down the first kernel that produces a non-finite value
            // (skipped once cancelled: a failed POTRF leaves its tile in a
            // legitimately half-factored state).
            let w = dag
                .graph
                .spec(t)
                .writes
                .expect("every Cholesky task writes its tile");
            let idx = lower(w.i, w.j);
            let tile = cells[idx].read();
            let d = tile.to_dense();
            assert!(
                d.as_slice().iter().all(|v| v.is_finite()),
                "non-finite output from {:?} (tile {},{} rank {})",
                dag.kinds[t],
                w.i,
                w.j,
                tile.rank()
            );
        }
        let nanos = started.elapsed().as_nanos();
        let idx = match class {
            TaskClass::Potrf => 0,
            TaskClass::Trsm => 1,
            TaskClass::Syrk => 2,
            TaskClass::Gemm => 3,
            TaskClass::Other => 4,
        };
        class_nanos.lock()[idx] += nanos;
    };
    // Both paths run the plan's precomputed scheduler tables
    // (`Engine::run_planned`): no per-run priority computation, and
    // `EngineConfig::sched` is irrelevant — the plan carries the policy.
    let exec_result = if let Some(pb) = pb {
        // Batched run: the engine schedules the contracted graph, the
        // closure loops the fused members, and the BatchObs shim plus
        // per-member `record_span` keep the trace at kernel granularity
        // against the original-sized ExecObs.
        let bobs = crate::batch::BatchObs::new(obs.as_ref(), &pb.members);
        let mut engine_cfg = EngineConfig::new(nthreads)
            .with_cancel(&cancel)
            .with_obs(&bobs);
        if let Some(reg) = &registry {
            engine_cfg = engine_cfg.with_metrics(reg);
        }
        Engine::new(&pb.graph).run_planned(&engine_cfg, sched_plan, |wid, b| {
            for &t in &pb.members[b] {
                match obs.as_ref() {
                    Some(o) => {
                        let s = o.now_ns();
                        run_task(wid, t);
                        o.record_span(wid, t, s, o.now_ns());
                    }
                    None => run_task(wid, t),
                }
            }
        })
    } else {
        let mut engine_cfg = EngineConfig::new(nthreads)
            .with_cancel(&cancel)
            .with_obs(obs.as_ref());
        if let Some(reg) = &registry {
            engine_cfg = engine_cfg.with_metrics(reg);
        }
        Engine::new(&dag.graph).run_planned(&engine_cfg, sched_plan, run_task)
    };
    let factorization_seconds = exec_t0.elapsed().as_secs_f64();

    // Move tiles back into the matrix regardless of success (a panicked
    // kernel released its lock on unwind, so the cells are readable).
    let mut idx = 0;
    for i in 0..nt {
        for j in 0..=i {
            matrix.put_tile(i, j, cells[idx].read().clone());
            idx += 1;
        }
    }
    exec_result?;

    let integrity_error = |i: usize, j: usize| {
        RunError::Engine(EngineError::Fault(FtError::Integrity(IntegrityError {
            rank: 0,
            data: (i, j),
            attempts: 0,
        })))
    };
    // A digest mismatch outranks the numeric error: corrupted inputs can
    // manufacture a spurious pivot failure.
    if let Some((i, j)) = integrity_bad.into_inner() {
        return Err(integrity_error(i, j));
    }
    if let Some(e) = error.into_inner() {
        return Err(RunError::Numeric(e));
    }
    // End-of-run sweep: verify every tile of the finished factor against
    // its seal once, so a flip between a tile's last write and here can
    // never leave the session silently. One digest per tile, O(n²) total
    // — negligible next to the O(n³)-ish factorization. (Skipped after a
    // pivot failure above: a half-factored tile legitimately no longer
    // matches its seal.)
    if let Some(ds) = &digests {
        let mut idx = 0;
        for i in 0..nt {
            for j in 0..=i {
                if !ds[idx].lock().d.verify(&cells[idx].read()) {
                    return Err(integrity_error(i, j));
                }
                idx += 1;
            }
        }
    }

    let n = class_nanos.into_inner();
    let breakdown = ClassBreakdown {
        potrf: n[0] as f64 * 1e-9,
        trsm: n[1] as f64 * 1e-9,
        syrk: n[2] as f64 * 1e-9,
        gemm: n[3] as f64 * 1e-9,
        other: n[4] as f64 * 1e-9,
    };

    // Rank evolution, buffer-growth counts and arena high-water marks
    // live in the per-worker workspaces; drain them once now that the
    // workers are done. Both the always-on registry and the obs metrics
    // consume the same drained state.
    let mut rank_evolution = RankEvolution::default();
    let mut workspace_alloc_events = 0u64;
    for (wid, ws) in workspaces.iter().enumerate() {
        let mut w = ws.lock();
        rank_evolution.merge(&w.take_rank_log());
        workspace_alloc_events += w.alloc_events();
        if let Some(reg) = &registry {
            reg.gauge_max(wid, Gauge::ArenaHighWaterBytes, w.high_water_bytes() as f64);
        }
    }
    if let Some(reg) = &registry {
        reg.add(0, Counter::WorkspaceGrowth, workspace_alloc_events);
        for (rank, &count) in rank_evolution.histogram().iter().enumerate() {
            reg.record_rank_counts(0, rank, count);
        }
    }
    let registry = registry.map(|r| r.snapshot());
    let drift = match (drift, &registry) {
        (Some(spec), Some(snap)) => Some(DriftReport::compute(spec, &dag.graph, snap, None)),
        _ => None,
    };

    let metrics = obs.map(|o| {
        let exec = o.finish(&dag.graph);
        let flops_executed: f64 = (0..dag.graph.len()).map(|t| dag.graph.spec(t).flops).sum();
        // Critical path priced with the durations this run actually
        // measured (not the model), so efficiency compares like to like.
        let mut dur = vec![0.0_f64; dag.graph.len()];
        for r in &exec.trace.records {
            dur[r.task] = r.duration();
        }
        let critical_path_seconds = critical_path(&dag.graph, |t| dur[t]).length;
        let makespan = exec.trace.makespan();
        let efficiency_vs_critical_path = if makespan > 0.0 {
            (critical_path_seconds / makespan).clamp(0.0, 1.0)
        } else {
            0.0
        };
        FactorMetrics {
            queue_wait_seconds: exec.trace.total_queue_wait(),
            per_worker_busy: exec.trace.busy_per_proc(nthreads),
            idle_fraction: exec.trace.idle_fraction(nthreads),
            load_imbalance: exec.trace.load_imbalance(nthreads),
            trace: exec.trace,
            steals: exec.steals,
            rank_evolution,
            workspace_alloc_events,
            flops_executed,
            critical_path_seconds,
            efficiency_vs_critical_path,
        }
    });

    let report = FactorReport {
        factorization_seconds,
        analysis_seconds,
        dag_tasks: dag.graph.len(),
        dense_dag_tasks: dag.analysis.dense_tasks(),
        final_snapshot: matrix.rank_snapshot(),
        memory_before_f64,
        memory_after_f64: matrix.memory_f64(),
        breakdown,
        diagonal_shift: 0.0,
        shift_attempts: 0,
        metrics,
    };
    Ok(RunOutcome {
        report,
        comm: None,
        ft: None,
        trace: None,
        registry,
        drift,
    })
}

/// One distributed attempt on the virtual-time [`DistEngine`]:
/// `scatter_tiles` → `kernel_env` → planned engine run → `gather_tiles`.
///
/// All placement and ordering decisions come off the [`SymbolicPlan`]'s
/// [`DistStatic`](crate::plan) machinery; this function only moves
/// tiles, runs kernels, and feeds measured traffic back into whichever
/// re-planner the session layers (embedded-in-plan or the deprecated
/// external `RefCell`).
#[allow(clippy::too_many_arguments)]
fn distributed_attempt(
    matrix: &mut TlrMatrix,
    cfg: &FactorConfig,
    nprocs: usize,
    ft: Option<&FtConfig>,
    replan: Option<&RefCell<CommReplanner>>,
    plan: &SymbolicPlan,
    drift: Option<&DriftSpec>,
    ev: CacheEvents,
    analysis_seconds: f64,
) -> Result<RunOutcome, RunError> {
    let tile_size = matrix.tile_size();
    let memory_before_f64 = matrix.memory_f64();
    let ds = plan
        .dist
        .as_ref()
        .expect("distributed plans carry placement state");
    let dag = &plan.dag;
    // Hold the mapping read-locked across the whole attempt: an embedded
    // re-planner refreshing it mid-run (another session sharing the
    // cached plan) must wait until this run has gathered its tiles.
    let map = ds.mapping.read();
    let initial = scatter_tiles(matrix, &map.placement, nprocs);
    let env = kernel_env(dag, &ds.preds, cfg, tile_size);

    // The virtual-time trace is gated like the shared-memory one: only
    // when tracing is requested *and* compiled in, so `collect_trace`
    // means the same thing on every path.
    //
    // The metrics registry shards per emulated rank: task counts and
    // virtual per-class durations land in the executing rank's shard,
    // comm/fault/integrity totals fold into shard 0 at end of run.
    let registry = cfg.collect_metrics.then(|| Registry::new(nprocs));
    if let Some(reg) = &registry {
        reg.add(0, Counter::PlanCacheHits, ev.hits);
        reg.add(0, Counter::PlanCacheMisses, ev.misses);
        reg.add(0, Counter::PlanCacheEvictions, ev.evictions);
    }
    let dist_cfg = DistConfig {
        ft,
        record_trace: cfg.collect_trace && ExecObs::enabled(),
        // Every path below runs `run_planned`: the plan's precomputed
        // order *is* the schedule, so no policy is passed down.
        sched: None,
        metrics: registry.as_ref(),
    };
    // The integrity layer arms when asked for explicitly, or whenever
    // the fault plan injects corruption — silent corruption with the
    // detector off would violate the bit-identical-factor contract.
    // The plan was keyed on the same predicate, so `map.batch` is
    // guaranteed `None` whenever `verify` holds.
    let verify =
        cfg.integrity != IntegrityMode::Off || ft.is_some_and(|f| f.plan.injects_corruption());
    let exec_t0 = std::time::Instant::now();
    let out: DistOutcome<Tile> =
        if verify {
            // Seal every tile with its exact content digest; kernels reseal
            // what they write (`TilePayload::from_tile`), and the engine
            // verifies at each read boundary, healing from lineage on a
            // mismatch. Unsealing afterwards keeps gathering and all
            // post-processing on the one plain-`Tile` code path.
            let sealed: Vec<HashMap<DataRef, SealedTile>> = initial
                .into_iter()
                .map(|m| {
                    m.into_iter()
                        .map(|(d, t)| (d, SealedTile::seal(t)))
                        .collect()
                })
                .collect();
            let corrupt = |p: &mut SealedTile, bits: u64| p.corrupt(bits);
            let check = |p: &SealedTile| p.verify();
            let hooks = IntegrityHooks {
                corrupt: &corrupt,
                verify: &check,
            };
            let out = DistEngine::new(&dag.graph, nprocs, &map.exec_rank).run_planned(
                sealed,
                &dist_cfg,
                &map.order,
                Some(&hooks),
                |t, ctx| env.run(t, ctx),
            )?;
            DistOutcome {
                stores: out
                    .stores
                    .into_iter()
                    .map(|m| m.into_iter().map(|(d, s)| (d, s.into_tile())).collect())
                    .collect(),
                exec_rank: out.exec_rank,
                comm: out.comm,
                stats: out.stats,
                makespan: out.makespan,
                events: out.events,
                trace: out.trace,
            }
        } else if let Some(db) = &map.batch {
            // Batched run: the engine schedules and ships at fused-task
            // granularity; the body replays the members in per-tile
            // program order, translating producer ids for inbox lookups.
            // The returned payload is the first member's tile (the fused
            // spec's `writes`); the other members' outputs travel via the
            // rank store (the engine ships non-`writes` edge data from
            // there).
            DistEngine::new(&db.pb.graph, nprocs, &db.exec_rank).run_planned(
                initial,
                &dist_cfg,
                &db.order,
                None,
                |b, ctx| {
                    let mut first = None;
                    for &t in &db.pb.members[b] {
                        let out = env.run_mapped(t, ctx, &db.pb.of);
                        if first.is_none() {
                            first = Some(out);
                        }
                    }
                    first.expect("batched task has at least one member")
                },
            )?
        } else {
            DistEngine::new(&dag.graph, nprocs, &map.exec_rank).run_planned(
                initial,
                &dist_cfg,
                &map.order,
                None,
                |t, ctx| env.run(t, ctx),
            )?
        };
    let factorization_seconds = exec_t0.elapsed().as_secs_f64();

    // A batched run's final rank assignment is indexed by fused-task ids;
    // project it back to original tasks for gathering.
    let final_exec: Vec<usize> = match &map.batch {
        Some(db) => db.pb.of.iter().map(|&b| out.exec_rank[b]).collect(),
        None => out.exec_rank.clone(),
    };
    gather_tiles(matrix, &ds.last_writer, &map.placement, &final_exec, &out.stores);
    if let Some(e) = env.error.into_inner() {
        return Err(RunError::Numeric(e));
    }
    // Feed the measured traffic back into the re-planner (successful
    // runs only — a failed attempt's comm is not a usable signal). The
    // planned (pre-fault) ranks and current overrides are cloned out so
    // the read guard can drop before an embedded re-planner refreshes
    // the mapping in place.
    let planned_exec = map.exec_rank.clone();
    let old_overrides = map.overrides.clone();
    drop(map);
    if let Some(rp) = &ds.replan {
        let mut r = rp.lock();
        r.observe(&dag.graph, &planned_exec, &out.comm);
        if *r.overrides() != old_overrides {
            let overrides = r.overrides().clone();
            drop(r);
            // Re-derive placement/orders from the existing DAG. The only
            // failure mode is a scheduler-key defect, which the original
            // derivation already ruled out — on the (unreachable) error
            // the old mapping simply stays in force.
            let _ = ds.refresh(dag, plan.nt, cfg.sched, overrides);
        }
    }
    if let Some(rc) = replan {
        rc.borrow_mut().observe(&dag.graph, &planned_exec, &out.comm);
    }
    let registry = registry.map(|r| r.snapshot());
    // Drift compares at original-task granularity: the model prices
    // `dag.graph` and the comm model uses the projected-back final
    // mapping, so batched and unbatched runs report comparably.
    let drift = match (drift, &registry) {
        (Some(spec), Some(snap)) => Some(DriftReport::compute(
            spec,
            &dag.graph,
            snap,
            Some((&final_exec, out.comm)),
        )),
        _ => None,
    };

    let report = FactorReport {
        factorization_seconds,
        analysis_seconds,
        dag_tasks: dag.graph.len(),
        dense_dag_tasks: dag.analysis.dense_tasks(),
        final_snapshot: matrix.rank_snapshot(),
        memory_before_f64,
        memory_after_f64: matrix.memory_f64(),
        breakdown: ClassBreakdown::default(),
        diagonal_shift: 0.0,
        shift_attempts: 0,
        metrics: None,
    };
    Ok(RunOutcome {
        report,
        comm: Some(out.comm),
        ft: ft.map(|_| FtFactorOutcome {
            stats: out.stats,
            makespan: out.makespan,
            events: out.events,
        }),
        trace: out.trace,
        registry,
        drift,
    })
}

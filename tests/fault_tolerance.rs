//! Fault-injection integration tests: the full RBF pipeline factorized on
//! the fault-tolerant distributed engine under seeded network faults and
//! rank crashes must reproduce the shared-memory factor *exactly*, and the
//! numeric recovery path (bounded diagonal-shift retries) must rescue
//! borderline-indefinite operators end to end.

use hicma_parsec::cholesky::{factorize, FactorConfig, IntegrityMode, Session};
use hicma_parsec::distribution::DiamondDistribution;
use hicma_parsec::linalg::norms::relative_diff;
use hicma_parsec::linalg::Matrix;
use hicma_parsec::mesh::geometry::{virus_population, VirusConfig};
use hicma_parsec::mesh::hilbert::{apply_permutation, hilbert_sort};
use hicma_parsec::mesh::GaussianRbf;
use hicma_parsec::runtime::{FaultPlan, FtConfig};
use hicma_parsec::tlr::{CompressionConfig, TlrMatrix};
use proptest::prelude::*;

/// Shared fixture: a Hilbert-ordered virus cloud and its kernel.
fn fixture(
    n_viruses: usize,
    per_virus: usize,
    seed: u64,
) -> (Vec<hicma_parsec::mesh::Point3>, GaussianRbf) {
    let cfg = VirusConfig {
        points_per_virus: per_virus,
        ..Default::default()
    };
    let raw = virus_population(n_viruses, &cfg, seed);
    let points = apply_permutation(&raw, &hilbert_sort(&raw));
    let kernel = GaussianRbf::from_min_distance(&points);
    (points, kernel)
}

/// A smooth synthetic SPD generator (Gaussian kernel + diagonal bump),
/// cheap enough for many property cases.
fn gaussian_gen(n: usize, corr: f64) -> impl Fn(usize, usize) -> f64 + Sync {
    move |i: usize, j: usize| {
        let d = (i as f64 - j as f64) / (n as f64 / corr);
        let v = (-d * d).exp();
        if i == j {
            v + 1e-3
        } else {
            v
        }
    }
}

#[test]
fn faulty_network_and_crash_reproduce_shared_memory_factor() {
    // Acceptance scenario: ≥10% cross-rank message drops plus one rank
    // crash in mid-factorization. The FT engine retransmits, dedups, and
    // migrates the dead rank's tasks onto survivors — and because every
    // consumer still reads exactly the payload versions the fault-free
    // schedule would have produced, the factor must match the
    // shared-memory run bit for bit.
    let (points, kernel) = fixture(2, 180, 71);
    let n = points.len();
    let accuracy = 1e-7;
    let ccfg = CompressionConfig::with_accuracy(accuracy);
    let mut shared = TlrMatrix::from_generator(n, 72, kernel.generator(&points), &ccfg);
    let mut faulty = TlrMatrix::from_generator(n, 72, kernel.generator(&points), &ccfg);
    let fcfg = FactorConfig::with_accuracy(accuracy);
    factorize(&mut shared, &fcfg).unwrap();

    let plan = FaultPlan::new(2026)
        .with_drops(0.12)
        .with_duplicates(0.05)
        .with_jitter(0.8)
        .with_crash(1, 15.0);
    let ft = FtConfig::with_plan(plan);
    let outcome = Session::distributed(fcfg, 6, &DiamondDistribution::new(6))
        .with_fault_layer(&ft)
        .run(&mut faulty)
        .expect("plan is survivable: one crash, five survivors")
        .ft
        .expect("fault layer was configured");

    assert_eq!(outcome.stats.crashes, 1, "the scheduled crash must fire");
    assert!(
        outcome.stats.messages_dropped > 0,
        "drop injection must bite"
    );
    assert!(
        outcome.stats.tasks_migrated > 0,
        "recovery must migrate work"
    );
    assert!(
        outcome.stats.retransmissions > 0,
        "drops must force retransmits"
    );
    let diff = relative_diff(&faulty.to_dense_lower(), &shared.to_dense_lower());
    assert!(
        diff == 0.0,
        "fault recovery must be numerically invisible, got diff {diff}"
    );
}

#[test]
fn borderline_indefinite_rbf_recovers_end_to_end() {
    // Numeric recovery at the pipeline level: cancel the SPD diagonal
    // bump of a Gaussian operator and overshoot by 1e-7, leaving
    // λ_min ≈ −1e-7. Plain factorization must fail; with bounded
    // diagonal-shift retries it must succeed and report the shift.
    let n = 192;
    let gen = gaussian_gen(n, 6.0);
    let shifted = move |i: usize, j: usize| gen(i, j) - if i == j { 1e-3 + 1e-7 } else { 0.0 };
    let ccfg = CompressionConfig::with_accuracy(1e-8);

    let mut bare = TlrMatrix::from_generator(n, 48, &shifted, &ccfg);
    let mut cfg = FactorConfig::with_accuracy(1e-8);
    cfg.max_shift_retries = 0;
    factorize(&mut bare, &cfg).expect_err("test premise: operator is indefinite");

    let mut rescued = TlrMatrix::from_generator(n, 48, &shifted, &ccfg);
    cfg.max_shift_retries = 5;
    let report = factorize(&mut rescued, &cfg).expect("shift retries must rescue");
    assert!(report.shift_attempts >= 1);
    assert!(report.diagonal_shift > 0.0 && report.diagonal_shift <= 1e-3);

    // The factor is a valid Cholesky of the slightly shifted operator.
    let l = rescued.to_dense_lower();
    let mut recon = Matrix::zeros(n, n);
    hicma_parsec::linalg::gemm(
        hicma_parsec::linalg::Trans::No,
        hicma_parsec::linalg::Trans::Yes,
        1.0,
        &l,
        &l,
        0.0,
        &mut recon,
    );
    let mut target = Matrix::from_fn(n, n, &shifted);
    for d in 0..n {
        target[(d, d)] += report.diagonal_shift;
    }
    let err = relative_diff(&recon, &target);
    assert!(err < 1e-5, "shifted reconstruction error {err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any survivable lossy/reordering network — random drop and
    /// duplication rates, random delivery jitter (which reorders
    /// messages), random seed — yields the exact shared-memory factor.
    #[test]
    fn lossy_reordered_network_is_numerically_invisible(
        seed in 0u64..100_000,
        drop_pct in 0u32..30,
        dup_pct in 0u32..30,
        jitter_tenths in 0u32..25,
    ) {
        let n = 96;
        let b = 24;
        let acc = 1e-8;
        let gen = gaussian_gen(n, 6.0);
        let ccfg = CompressionConfig::with_accuracy(acc);
        let mut shared = TlrMatrix::from_generator(n, b, &gen, &ccfg);
        let mut faulty = TlrMatrix::from_generator(n, b, &gen, &ccfg);
        let fcfg = FactorConfig::with_accuracy(acc);
        factorize(&mut shared, &fcfg).unwrap();

        let plan = FaultPlan::new(seed)
            .with_drops(drop_pct as f64 / 100.0)
            .with_duplicates(dup_pct as f64 / 100.0)
            .with_jitter(jitter_tenths as f64 / 10.0);
        let ft = FtConfig::with_plan(plan);
        let outcome = Session::distributed(fcfg, 4, &DiamondDistribution::new(4))
            .with_fault_layer(&ft)
            .run(&mut faulty);
        prop_assert!(outcome.is_ok(), "survivable plan failed: {:?}", outcome.err());
        let diff = relative_diff(&faulty.to_dense_lower(), &shared.to_dense_lower());
        prop_assert!(diff == 0.0, "network faults changed the factor: {diff}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any lossy *and* corrupted network preserves the communication-
    /// ledger invariants: every attempt is counted (`comm.messages ==
    /// sent + retransmissions`), every mutated payload is detected and
    /// NACKed exactly once, no send is abandoned, and the factor stays
    /// bit-identical to the shared-memory run.
    #[test]
    fn corrupted_lossy_network_preserves_comm_invariants(
        seed in 0u64..100_000,
        drop_pct in 0u32..20,
        corrupt_pct in 0u32..40,
    ) {
        let n = 96;
        let b = 24;
        let acc = 1e-8;
        let gen = gaussian_gen(n, 6.0);
        let ccfg = CompressionConfig::with_accuracy(acc);
        let mut shared = TlrMatrix::from_generator(n, b, &gen, &ccfg);
        let mut faulty = TlrMatrix::from_generator(n, b, &gen, &ccfg);
        let fcfg = FactorConfig::with_accuracy(acc);
        factorize(&mut shared, &fcfg).unwrap();

        let plan = FaultPlan::new(seed)
            .with_drops(drop_pct as f64 / 100.0)
            .with_message_corruption(corrupt_pct as f64 / 100.0);
        let ft = FtConfig::with_plan(plan);
        let out = Session::distributed(fcfg, 4, &DiamondDistribution::new(4))
            .with_fault_layer(&ft)
            .run(&mut faulty);
        prop_assert!(out.is_ok(), "survivable plan failed: {:?}", out.err());
        let out = out.unwrap();
        let stats = &out.ft.as_ref().unwrap().stats;
        let comm = out.comm.as_ref().unwrap();
        prop_assert_eq!(
            comm.messages as usize,
            stats.messages_sent + stats.retransmissions,
            "comm ledger must count every attempt"
        );
        prop_assert_eq!(stats.corruptions_detected, stats.messages_corrupted,
            "exact digests admit no false negatives and no store strikes ran");
        prop_assert_eq!(stats.nacks_sent, stats.corruptions_detected,
            "every detected payload must be NACKed exactly once");
        prop_assert_eq!(stats.sends_abandoned, 0, "NACK/retransmit must converge");
        prop_assert_eq!(stats.store_corruptions_injected, 0);
        let diff = relative_diff(&faulty.to_dense_lower(), &shared.to_dense_lower());
        prop_assert!(diff == 0.0, "corruption changed the factor: {diff}");
    }

    /// A fault-free run with the integrity layer armed explicitly never
    /// trips a digest check: zero false positives, zero heal activity,
    /// and the comm ledger matches a run with the layer off.
    #[test]
    fn armed_integrity_layer_is_invisible_on_clean_runs(seed in 0u64..100_000) {
        let n = 96;
        let b = 24;
        let acc = 1e-8;
        let gen = gaussian_gen(n, 6.0);
        let ccfg = CompressionConfig::with_accuracy(acc);
        let mut plain = TlrMatrix::from_generator(n, b, &gen, &ccfg);
        let mut sealed = TlrMatrix::from_generator(n, b, &gen, &ccfg);
        let fcfg = FactorConfig::with_accuracy(acc);
        let ft = FtConfig::with_plan(FaultPlan::new(seed));

        let base = Session::distributed(fcfg, 4, &DiamondDistribution::new(4))
            .with_fault_layer(&ft)
            .run(&mut plain)
            .unwrap();
        let mut vcfg = fcfg;
        vcfg.integrity = IntegrityMode::VerifyReads;
        let out = Session::distributed(vcfg, 4, &DiamondDistribution::new(4))
            .with_fault_layer(&ft)
            .run(&mut sealed)
            .unwrap();
        let stats = &out.ft.as_ref().unwrap().stats;
        prop_assert_eq!(stats.corruptions_detected, 0, "false positive on a clean run");
        prop_assert_eq!(stats.corruptions_healed, 0);
        prop_assert_eq!(stats.nacks_sent, 0);
        prop_assert_eq!(
            out.comm.as_ref().unwrap().messages,
            base.comm.as_ref().unwrap().messages,
            "sealing must not change the communication schedule"
        );
        let diff = relative_diff(&sealed.to_dense_lower(), &plain.to_dense_lower());
        prop_assert!(diff == 0.0, "integrity layer changed the factor: {diff}");
    }
}

//! Property-based tests (proptest) on the core invariants of the stack:
//! compression error bounds, kernel format-equivalence, Cholesky
//! reconstruction, Hilbert permutation validity, Algorithm-1 analysis
//! invariants, and DES lower bounds.

use hicma_parsec::cholesky::simulate::{simulate_cholesky, DistributionPlan, SimConfig};
use hicma_parsec::cholesky::MatrixAnalysis;
use hicma_parsec::distribution::{
    BandDistribution, DiamondDistribution, LorapoHybrid, TileDistribution, TwoDBlockCyclic,
};
use hicma_parsec::linalg::{gemm, potrf, Matrix, Trans};
use hicma_parsec::mesh::hilbert::hilbert_sort;
use hicma_parsec::mesh::Point3;
use hicma_parsec::runtime::{MachineModel, SchedPolicy};
use hicma_parsec::tlr::kernels::{gemm_kernel, gemm_kernel_ws, reference, KernelWorkspace};
use hicma_parsec::tlr::{compress_tile, CompressionConfig, RankSnapshot, Tile};
use proptest::prelude::*;

/// Deterministic pseudo-random matrix from a seed.
fn seeded_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

/// Rank-`k` matrix with geometric singular decay.
fn seeded_low_rank(n: usize, k: usize, seed: u64) -> Matrix {
    let u = seeded_matrix(n, k, seed);
    let v = seeded_matrix(n, k, seed ^ 0xDEAD);
    let mut out = Matrix::zeros(n, n);
    for p in 0..k {
        let s = 2.0_f64.powi(-(p as i32));
        for j in 0..n {
            let w = s * v[(j, p)];
            for i in 0..n {
                out[(i, j)] += w * u[(i, p)];
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Compression at tolerance ε leaves ‖A − UVᵀ‖_F ≤ O(ε).
    #[test]
    fn compression_error_bounded(seed in 0u64..1000, k in 1usize..10, tol_exp in 1i32..8) {
        let n = 24;
        let tol = 10f64.powi(-tol_exp);
        let a = seeded_low_rank(n, k, seed);
        let t = compress_tile(a.clone(), &CompressionConfig::with_accuracy(tol));
        let mut diff = t.to_dense();
        diff.axpy(-1.0, &a);
        let err = hicma_parsec::linalg::frobenius_norm(&diff);
        prop_assert!(err <= 10.0 * tol, "err {} tol {}", err, tol);
        // rank never exceeds the construction rank (spectrum truncates)
        prop_assert!(t.rank() <= k.min(n));
    }

    /// The TLR GEMM kernel agrees with dense arithmetic for every format
    /// combination of its inputs.
    #[test]
    fn gemm_kernel_equals_dense(seed in 0u64..500, ka in 1usize..6, kb in 1usize..6) {
        let n = 16;
        let cfg = CompressionConfig::with_accuracy(1e-9);
        let a_m = seeded_low_rank(n, ka, seed);
        let b_m = seeded_low_rank(n, kb, seed ^ 0xBEEF);
        let c_m = seeded_low_rank(n, 3, seed ^ 0xCAFE);
        let mut expect = c_m.clone();
        gemm(Trans::No, Trans::Yes, -1.0, &a_m, &b_m, 1.0, &mut expect);

        for a_t in [Tile::Dense(a_m.clone()), compress_tile(a_m.clone(), &cfg)] {
            for b_t in [Tile::Dense(b_m.clone()), compress_tile(b_m.clone(), &cfg)] {
                let mut c_t = compress_tile(c_m.clone(), &cfg);
                gemm_kernel(&a_t, &b_t, &mut c_t, &cfg);
                let mut diff = c_t.to_dense();
                diff.axpy(-1.0, &expect);
                let err = hicma_parsec::linalg::frobenius_norm(&diff);
                prop_assert!(err < 1e-6, "err {}", err);
            }
        }
    }

    /// The workspace engine (implicit-Q, arena-backed) and the kept
    /// pre-PR reference kernel (explicit-Q, allocating) agree to near
    /// machine precision over random sequences of updates that share a
    /// single arena — the arena's buffer-recycling history must never
    /// leak into the numerics.
    #[test]
    fn workspace_kernel_matches_reference(
        seed in 0u64..300, ka in 1usize..6, kb in 1usize..6, len in 1usize..4,
    ) {
        let n = 20;
        let cfg = CompressionConfig::with_accuracy(1e-8);
        let mut ws = KernelWorkspace::new();
        let mut c_ws = compress_tile(seeded_low_rank(n, 3, seed ^ 0xC0DE), &cfg);
        let mut c_ref = c_ws.clone();
        for step in 0..len {
            let s = seed ^ ((step as u64 + 1) << 8);
            let a_t = compress_tile(seeded_low_rank(n, ka, s), &cfg);
            let b_t = compress_tile(seeded_low_rank(n, kb, s ^ 0xBEEF), &cfg);
            gemm_kernel_ws(&mut ws, &a_t, &b_t, &mut c_ws, &cfg);
            reference::gemm_kernel_reference(&a_t, &b_t, &mut c_ref, &cfg);
            let d_ws = c_ws.to_dense();
            let mut diff = d_ws.clone();
            diff.axpy(-1.0, &c_ref.to_dense());
            let scale = hicma_parsec::linalg::frobenius_norm(&d_ws).max(1.0);
            let err = hicma_parsec::linalg::frobenius_norm(&diff) / scale;
            prop_assert!(err < 1e-12, "step {} err {}", step, err);
        }
    }

    /// Workspace-recompressed updates stay within the accuracy headroom
    /// of exact dense arithmetic, and the produced rank never exceeds
    /// `min(rows, cols, ktot)` — the stacked inner dimension that the
    /// recompression engine truncates.
    #[test]
    fn workspace_recompression_error_and_rank_bounded(
        seed in 0u64..300, ka in 1usize..6, kb in 1usize..6, kc in 1usize..6,
    ) {
        let n = 18;
        let cfg = CompressionConfig::with_accuracy(1e-8);
        let a_m = seeded_low_rank(n, ka, seed);
        let b_m = seeded_low_rank(n, kb, seed ^ 0xBEEF);
        let c_m = seeded_low_rank(n, kc, seed ^ 0xCAFE);
        let mut expect = c_m.clone();
        gemm(Trans::No, Trans::Yes, -1.0, &a_m, &b_m, 1.0, &mut expect);

        let a_t = compress_tile(a_m, &cfg);
        let b_t = compress_tile(b_m, &cfg);
        let mut c_t = compress_tile(c_m, &cfg);
        let (ra, rb, rc) = (a_t.rank(), b_t.rank(), c_t.rank());
        let mut ws = KernelWorkspace::new();
        gemm_kernel_ws(&mut ws, &a_t, &b_t, &mut c_t, &cfg);

        let mut diff = c_t.to_dense();
        diff.axpy(-1.0, &expect);
        let scale = hicma_parsec::linalg::frobenius_norm(&expect).max(1.0);
        let err = hicma_parsec::linalg::frobenius_norm(&diff) / scale;
        prop_assert!(err < 100.0 * cfg.accuracy, "err {}", err);

        // Stacked inner dimension: destination rank + product rank.
        let ktot = rc + ra.min(rb);
        prop_assert!(
            c_t.rank() <= n.min(ktot),
            "rank {} exceeds min(n = {}, ktot = {})", c_t.rank(), n, ktot
        );
    }

    /// potrf reconstructs any SPD input.
    #[test]
    fn potrf_reconstructs(seed in 0u64..1000, n in 2usize..40) {
        let b = seeded_matrix(n, n, seed);
        let mut a = Matrix::identity(n);
        a.scale(n as f64);
        gemm(Trans::No, Trans::Yes, 1.0, &b, &b, 1.0, &mut a);
        let mut l = a.clone();
        potrf(&mut l).unwrap();
        l.zero_upper();
        let mut recon = Matrix::zeros(n, n);
        gemm(Trans::No, Trans::Yes, 1.0, &l, &l, 0.0, &mut recon);
        prop_assert!(hicma_parsec::linalg::relative_diff(&recon, &a) < 1e-11);
    }

    /// Hilbert sort always returns a permutation.
    #[test]
    fn hilbert_sort_is_permutation(seed in 0u64..1000, n in 1usize..200) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99991);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let pts: Vec<Point3> = (0..n)
            .map(|_| Point3 { x: next(), y: next(), z: next() })
            .collect();
        let mut order = hilbert_sort(&pts);
        order.sort_unstable();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// Algorithm-1 invariants on random sparsity patterns:
    /// * surviving tasks never exceed the dense count,
    /// * final density ≥ initial density (fill only adds tiles),
    /// * fill count equals the growth in non-null tiles.
    #[test]
    fn analysis_invariants(seed in 0u64..2000, nt in 2usize..16, density_pct in 0usize..100) {
        let b = 64;
        let mut state = seed | 1;
        let mut ranks = vec![0usize; nt * nt];
        let mut initial_nonnull = 0usize;
        for i in 0..nt {
            ranks[i * nt + i] = b;
            for j in 0..i {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(12345);
                if ((state >> 33) as usize % 100) < density_pct {
                    ranks[i * nt + j] = 1 + ((state >> 20) as usize % 8);
                    initial_nonnull += 1;
                }
            }
        }
        let snap = RankSnapshot::new(nt, b, ranks);
        let analysis = MatrixAnalysis::analyze(&snap, b);
        prop_assert!(analysis.surviving_tasks() <= analysis.dense_tasks());
        prop_assert!(analysis.final_density() >= snap.density() - 1e-12);
        let final_nonnull = (0..nt)
            .flat_map(|i| (0..i).map(move |j| (i, j)))
            .filter(|&(i, j)| analysis.final_ranks.rank(i, j) > 0)
            .count();
        prop_assert_eq!(final_nonnull, initial_nonnull + analysis.fill_count);
    }

    /// The work-stealing executor respects dependencies on arbitrary
    /// random DAGs: every task observes all its predecessors' effects.
    #[test]
    fn executor_respects_random_dags(seed in 0u64..300, n in 2usize..60, density_pct in 5usize..60) {
        use hicma_parsec::runtime::{Engine, EngineConfig};
        use hicma_parsec::runtime::graph::{TaskGraph, TaskSpec, TaskClass, DataRef};
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add_task(TaskSpec {
                class: TaskClass::Other,
                priority: i,
                writes: None,
                flops: 0.0,
            });
        }
        // random edges i → j only for i < j (guarantees acyclicity)
        let mut state = seed | 1;
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(97);
                if ((state >> 33) as usize % 100) < density_pct {
                    g.add_edge(i, j, DataRef { i, j: 0 }, 0);
                    edges.push((i, j));
                }
            }
        }
        let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let violations = AtomicUsize::new(0);
        Engine::new(&g).run(&EngineConfig::new(4), |_wid, t| {
            // every predecessor must already be marked done
            for &(i, j) in &edges {
                if j == t && !done[i].load(Ordering::SeqCst) {
                    violations.fetch_add(1, Ordering::SeqCst);
                }
            }
            done[t].store(true, Ordering::SeqCst);
        }).unwrap();
        prop_assert_eq!(violations.load(Ordering::SeqCst), 0);
        prop_assert!(done.iter().all(|d| d.load(Ordering::SeqCst)));
    }

    /// Every distribution maps every lower-triangle tile to a valid dense
    /// process id: `owner(i, j) < nprocs()` over the whole triangle, for
    /// any process count and tile count.
    #[test]
    fn distribution_owners_in_range(nprocs in 1usize..64, nt in 1usize..40) {
        let layouts: [Box<dyn TileDistribution>; 4] = [
            Box::new(TwoDBlockCyclic::new(nprocs)),
            Box::new(LorapoHybrid::new(nprocs)),
            Box::new(BandDistribution::new(nprocs)),
            Box::new(DiamondDistribution::new(nprocs)),
        ];
        for dist in &layouts {
            prop_assert_eq!(dist.nprocs(), nprocs, "{}", dist.name());
            for i in 0..nt {
                for j in 0..=i {
                    let o = dist.owner(i, j);
                    prop_assert!(
                        o < nprocs,
                        "{}: owner({}, {}) = {} with nprocs = {}",
                        dist.name(), i, j, o, nprocs
                    );
                }
            }
        }
    }

    /// §VII-A critical-path locality: `BandDistribution` places the POTRF
    /// tile `(k, k)` and the first TRSM tile `(k+1, k)` on the same
    /// process for every panel `k`, at any process count.
    #[test]
    fn band_colocates_critical_path(nprocs in 1usize..64, nt in 2usize..40) {
        let d = BandDistribution::new(nprocs);
        for k in 0..nt - 1 {
            prop_assert_eq!(
                d.owner(k, k),
                d.owner(k + 1, k),
                "panel {} split across processes (nprocs = {})",
                k, nprocs
            );
        }
    }

    /// DES makespan is bounded below by the critical path and above by a
    /// full serialization, for any sparsity/plan.
    #[test]
    fn simulation_bounds(seed in 0u64..200, nt in 4usize..14) {
        let b = 256;
        let mut state = seed | 1;
        let mut ranks = vec![0usize; nt * nt];
        for i in 0..nt {
            ranks[i * nt + i] = b;
            for j in 0..i {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                if (state >> 33) % 2 == 0 {
                    ranks[i * nt + j] = 2 + ((state >> 40) as usize % 12);
                }
            }
        }
        let snap = RankSnapshot::new(nt, b, ranks);
        for plan in [DistributionPlan::Lorapo, DistributionPlan::Band, DistributionPlan::BandDiamond] {
            let cfg = SimConfig {
                machine: MachineModel::shaheen_ii(),
                nodes: 4,
                plan,
                trimmed: true,
                rank_cap: b,
                band_width: 2,
                sched: SchedPolicy::PanelPriority,
            };
            let r = simulate_cholesky(&snap, &cfg);
            prop_assert!(r.factorization_seconds >= r.critical_path_seconds - 1e-12,
                "{:?}: {} < CP {}", plan, r.factorization_seconds, r.critical_path_seconds);
        }
    }
}

//! Symbolic/numeric split contract: a factorization driven by a cached
//! (or explicitly prebuilt) `SymbolicPlan` is bit-identical to one that
//! re-plans from scratch — across every capability subset (observation,
//! fault layer, tile integrity), every scheduling policy, and batching
//! on/off. Planning decides *where and in what order* kernels run, never
//! what they compute; the cache only decides whether planning happens.
//! Plus the cache mechanics themselves: key validation on the explicit
//! plan path, LRU eviction, and hit/miss counters surfacing in the run
//! registry.

use hicma_parsec::cholesky::{
    factorize, FactorConfig, IntegrityMode, PlanCache, RunError, Session,
};
use hicma_parsec::distribution::TwoDBlockCyclic;
use hicma_parsec::linalg::norms::relative_diff;
use hicma_parsec::linalg::Matrix;
use hicma_parsec::runtime::{FaultPlan, FtConfig, SchedPolicy};
use hicma_parsec::tlr::{CompressionConfig, TlrMatrix};
use proptest::prelude::*;

/// Seeded RBF-structured SPD generator (Gaussian kernel on a 1D grid
/// with a seed-dependent phase, plus a diagonal bump).
fn rbf_gen(n: usize, corr: f64, seed: u64) -> impl Fn(usize, usize) -> f64 + Sync {
    let phase = (seed % 97) as f64 / 97.0;
    move |i: usize, j: usize| {
        let d = (i as f64 - j as f64) / (n as f64 / corr);
        let v = (-d * d).exp() * (1.0 + 0.05 * ((i + j) as f64 * 0.01 + phase).sin());
        if i == j {
            v + 1e-3
        } else {
            v
        }
    }
}

fn compressed(dense: &Matrix, b: usize, acc: f64) -> TlrMatrix {
    TlrMatrix::from_dense(dense, b, &CompressionConfig::with_accuracy(acc))
}

/// A distributed session with the given optional capability layers.
fn dist_session<'a>(
    cfg: FactorConfig,
    dist: &'a TwoDBlockCyclic,
    ft_cfg: &'a Option<FtConfig>,
    cache: Option<&'a PlanCache>,
) -> Session<'a> {
    let mut s = Session::distributed(cfg, 4, dist);
    if let Some(ft) = ft_cfg {
        s = s.with_fault_layer(ft);
    }
    if let Some(c) = cache {
        s = s.with_plan_cache(c);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shared-memory: for a random (policy, batching, obs, integrity)
    /// configuration, a fresh run, a cold-cache run, a warm-cache run
    /// and an explicit `plan`/`run_with_plan` pair all produce the
    /// identical factor, and the cache counts exactly one miss + hits.
    #[test]
    fn cached_shared_factor_is_bit_identical(
        seed in 0u64..10_000,
        corr in 4u32..10,
        policy_i in 0usize..SchedPolicy::ALL.len(),
        batch_flag in 0u32..2,
        obs_flag in 0u32..2,
        integrity_i in 0usize..3,
    ) {
        let n = 96;
        let b = 24;
        let acc = 1e-8;
        let dense = Matrix::from_fn(n, n, rbf_gen(n, corr as f64, seed));
        let mut cfg = FactorConfig::with_accuracy(acc);
        cfg.sched = SchedPolicy::ALL[policy_i];
        cfg.batch_panels = batch_flag == 1;
        cfg.collect_trace = obs_flag == 1;
        cfg.integrity = [
            IntegrityMode::Off,
            IntegrityMode::Maintain,
            IntegrityMode::VerifyReads,
        ][integrity_i];

        // Fresh planning every run: the reference factor.
        let mut fresh = compressed(&dense, b, acc);
        factorize(&mut fresh, &cfg).unwrap();
        let l_ref = fresh.to_dense_lower();

        // Cold miss, then a warm hit, through one cache.
        let cache = PlanCache::new(2);
        let session = Session::shared(cfg).with_plan_cache(&cache);
        let mut cold = compressed(&dense, b, acc);
        let out_cold = session.run(&mut cold).unwrap();
        prop_assert_eq!(
            relative_diff(&cold.to_dense_lower(), &l_ref), 0.0,
            "cold-cache factor deviated"
        );
        let mut warm = compressed(&dense, b, acc);
        let out_warm = session.run(&mut warm).unwrap();
        prop_assert_eq!(
            relative_diff(&warm.to_dense_lower(), &l_ref), 0.0,
            "warm-cache factor deviated"
        );
        prop_assert_eq!(cache.misses(), 1);
        prop_assert_eq!(cache.hits(), 1);
        // Cache activity lands in the per-run registry.
        let hit = |o: &hicma_parsec::cholesky::RunOutcome, name: &str| {
            o.registry
                .as_ref()
                .and_then(|s| s.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v))
                .unwrap_or(0)
        };
        if out_cold.registry.as_ref().is_some_and(|s| !s.is_empty()) {
            prop_assert_eq!(hit(&out_cold, "plan_cache_misses"), 1);
            prop_assert_eq!(hit(&out_cold, "plan_cache_hits"), 0);
            prop_assert_eq!(hit(&out_warm, "plan_cache_hits"), 1);
            prop_assert_eq!(hit(&out_warm, "plan_cache_misses"), 0);
        }

        // Explicit split: plan once, execute the plan.
        let planner = Session::shared(cfg);
        let mut planned = compressed(&dense, b, acc);
        let plan = planner.plan(&planned).unwrap();
        prop_assert!(plan.tasks() > 0);
        prop_assert!(!plan.is_distributed());
        planner.run_with_plan(&plan, &mut planned).unwrap();
        prop_assert_eq!(
            relative_diff(&planned.to_dense_lower(), &l_ref), 0.0,
            "run_with_plan factor deviated"
        );
    }

    /// Distributed: the same contract across {plain, obs, ft, integrity}
    /// capability subsets on 4 emulated ranks — every subset factors
    /// bit-identically to the shared-memory reference whether its plan
    /// came fresh or from the cache.
    #[test]
    fn cached_distributed_factor_is_bit_identical(
        seed in 0u64..10_000,
        corr in 4u32..10,
        policy_i in 0usize..SchedPolicy::ALL.len(),
        batch_flag in 0u32..2,
        subset in 0usize..4,
    ) {
        let n = 96;
        let b = 24;
        let acc = 1e-8;
        let dense = Matrix::from_fn(n, n, rbf_gen(n, corr as f64, seed));
        let mut cfg = FactorConfig::with_accuracy(acc);
        cfg.sched = SchedPolicy::ALL[policy_i];
        cfg.batch_panels = batch_flag == 1;

        let mut reference = compressed(&dense, b, acc);
        factorize(&mut reference, &cfg).unwrap();
        let l_ref = reference.to_dense_lower();

        let dist = TwoDBlockCyclic::new(4);
        // The capability subset under test: plain, traced, faulty, or
        // integrity-armed. (Fault/integrity runs plan differently — no
        // batching, sealed payloads — which is exactly what the key must
        // capture.)
        let ft_cfg = (subset == 2).then(|| {
            FtConfig::with_plan(
                FaultPlan::new(seed)
                    .with_drops(0.1)
                    .with_duplicates(0.05)
                    .with_jitter(0.5),
            )
        });
        if subset == 1 {
            cfg.collect_trace = true;
        }
        if subset == 3 {
            cfg.integrity = IntegrityMode::VerifyReads;
        }
        let mut fresh = compressed(&dense, b, acc);
        let out_fresh = dist_session(cfg, &dist, &ft_cfg, None).run(&mut fresh).unwrap();
        prop_assert_eq!(
            relative_diff(&fresh.to_dense_lower(), &l_ref), 0.0,
            "fresh distributed factor deviated"
        );

        let cache = PlanCache::new(2);
        let session = dist_session(cfg, &dist, &ft_cfg, Some(&cache));
        for round in 0..2 {
            let mut m = compressed(&dense, b, acc);
            let out = session.run(&mut m).unwrap();
            prop_assert_eq!(
                relative_diff(&m.to_dense_lower(), &l_ref), 0.0,
                "cached distributed factor deviated on round {}", round
            );
            // Planning never changes measured traffic on fault-free
            // subsets (faulty runs retransmit nondeterministically by
            // subset design, so only compare when the wire is clean).
            if subset != 2 {
                prop_assert_eq!(out.comm.as_ref().unwrap(), out_fresh.comm.as_ref().unwrap());
            }
        }
        prop_assert_eq!(cache.misses(), 1);
        prop_assert_eq!(cache.hits(), 1);
    }
}

/// A plan built for one configuration must be rejected — not run — when
/// handed a session or matrix with a different fingerprint.
#[test]
fn mismatched_plan_is_rejected_with_both_keys() {
    let n = 96;
    let b = 24;
    let acc = 1e-8;
    let dense = Matrix::from_fn(n, n, rbf_gen(n, 6.0, 42));
    let m0 = compressed(&dense, b, acc);
    let cfg = FactorConfig::with_accuracy(acc);
    let plan = Session::shared(cfg).plan(&m0).unwrap();

    // Different accuracy → different key.
    let other_cfg = FactorConfig::with_accuracy(1e-4);
    let mut other = compressed(&dense, b, 1e-4);
    match Session::shared(other_cfg).run_with_plan(&plan, &mut other) {
        Err(RunError::PlanMismatch { plan: p, requested }) => {
            assert_eq!(*p, *plan.key());
            assert_ne!(*p, *requested);
        }
        other => panic!("expected PlanMismatch, got {other:?}"),
    }

    // Different matrix structure (same config) → different key.
    let dense2 = Matrix::from_fn(n, n, rbf_gen(n, 9.0, 777));
    let mut m2 = compressed(&dense2, b, acc);
    if m2.rank_snapshot().as_flat() != m0.rank_snapshot().as_flat() {
        assert!(matches!(
            Session::shared(cfg).run_with_plan(&plan, &mut m2),
            Err(RunError::PlanMismatch { .. })
        ));
    }

    // The matching pair still runs.
    let mut ok = compressed(&dense, b, acc);
    Session::shared(cfg).run_with_plan(&plan, &mut ok).unwrap();
}

/// LRU eviction: a capacity-1 cache alternating between two structures
/// evicts on every switch and the counters say so.
#[test]
fn lru_eviction_is_counted() {
    let n = 96;
    let b = 24;
    let acc = 1e-8;
    let dense_a = Matrix::from_fn(n, n, rbf_gen(n, 5.0, 1));
    let cfg_a = FactorConfig::with_accuracy(acc);
    let mut cfg_b = cfg_a;
    cfg_b.sched = SchedPolicy::Fifo; // different key, same matrix

    let cache = PlanCache::new(1);
    let sa = Session::shared(cfg_a).with_plan_cache(&cache);
    let sb = Session::shared(cfg_b).with_plan_cache(&cache);
    for _ in 0..2 {
        let mut ma = compressed(&dense_a, b, acc);
        sa.run(&mut ma).unwrap();
        let mut mb = compressed(&dense_a, b, acc);
        sb.run(&mut mb).unwrap();
    }
    assert_eq!(cache.len(), 1);
    assert_eq!(cache.misses(), 4, "every switch must rebuild");
    assert_eq!(cache.evictions(), 3, "capacity 1 evicts on every insert");
    assert_eq!(cache.hits(), 0);
}

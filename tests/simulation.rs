//! Integration tests of the distributed simulation layer: the paper's
//! qualitative claims must hold on the simulated machines.

use hicma_parsec::cholesky::lorapo::{hicma_parsec_config, incremental_configs, lorapo_config};
use hicma_parsec::cholesky::simulate::{scaled_problem, simulate_cholesky};
use hicma_parsec::runtime::MachineModel;
use hicma_parsec::tlr::SyntheticRankModel;

fn snapshot(nt: usize, b: usize, shape: f64) -> hicma_parsec::tlr::RankSnapshot {
    SyntheticRankModel::from_application(nt, b, shape, 1e-4).snapshot()
}

/// Figs. 9/10 headline: HiCMA-PaRSEC beats Lorapo clearly on both
/// machines (the paper reports 6.8× on Shaheen II and 9.1× on Fugaku;
/// the exact ordering between machines depends on configuration details
/// our scaled runs do not pin down, so we assert the robust part).
#[test]
fn speedup_on_both_machines() {
    let s = snapshot(160, 1220, 3.7e-4);
    for machine in [MachineModel::shaheen_ii(), MachineModel::fugaku()] {
        let name = machine.name.clone();
        let nodes = 32;
        let lorapo = simulate_cholesky(&s, &lorapo_config(machine.clone(), nodes));
        let ours = simulate_cholesky(&s, &hicma_parsec_config(machine, nodes));
        let sp = lorapo.factorization_seconds / ours.factorization_seconds;
        assert!(sp > 1.2, "{name}: must beat Lorapo clearly, got {sp}");
    }
}

/// Fig. 7: each incremental optimization is not worse than the previous.
#[test]
fn incremental_optimizations_monotone() {
    let s = snapshot(192, 864, 3.7e-4);
    let mut last = f64::INFINITY;
    for (name, cfg) in incremental_configs(MachineModel::shaheen_ii(), 16) {
        let r = simulate_cholesky(&s, &cfg);
        assert!(
            r.factorization_seconds <= last * 1.05,
            "{name} regressed: {} vs previous {last}",
            r.factorization_seconds
        );
        last = last.min(r.factorization_seconds);
    }
}

/// Fig. 6 shape: trimming always has a net positive impact, and the gain
/// persists when node count and matrix size grow together (the paper's
/// combined sweep); the gain is larger at lower density (more null tiles
/// to cut — the Fig. 4 convergence in reverse).
#[test]
fn trimming_benefit_positive_and_density_driven() {
    let gain = |nt: usize, shape: f64, nodes: usize| -> f64 {
        let s = snapshot(nt, 864, shape);
        let mut untrimmed = lorapo_config(MachineModel::shaheen_ii(), nodes);
        untrimmed.trimmed = false;
        let mut trimmed = untrimmed.clone();
        trimmed.trimmed = true;
        simulate_cholesky(&s, &untrimmed).factorization_seconds
            / simulate_cholesky(&s, &trimmed).factorization_seconds
    };
    // Weak-scaling-style sweep (nodes and size grow together, as in the
    // paper's Fig. 6): trimming keeps a solid gain at every point.
    let g_small = gain(96, 2e-4, 4);
    let g_large = gain(192, 2e-4, 16);
    assert!(g_small > 1.2, "gain at small scale: {g_small}");
    assert!(g_large > 1.2, "gain at large scale: {g_large}");
    // Density-driven: a sparser operator benefits more.
    let g_sparse = gain(160, 2e-4, 16);
    let g_dense = gain(160, 2e-2, 16);
    assert!(
        g_sparse > g_dense,
        "sparser matrices must gain more from trimming: {g_sparse} vs {g_dense}"
    );
}

/// Fig. 12: tighter accuracy ⇒ higher ranks ⇒ longer time, on both codes.
#[test]
fn time_grows_with_accuracy() {
    let nt = 128;
    let b = 864;
    let mut last_ours = 0.0;
    for acc in [1e-5, 1e-7, 1e-9] {
        let s = SyntheticRankModel::from_application(nt, b, 3.7e-4, acc).snapshot();
        let ours =
            simulate_cholesky(&s, &hicma_parsec_config(MachineModel::shaheen_ii(), 16));
        assert!(
            ours.factorization_seconds >= last_ours * 0.98,
            "time should grow with accuracy"
        );
        last_ours = ours.factorization_seconds;
    }
}

/// Strong scaling holds until the critical path takes over (Fig. 9's
/// flattening), and weak-scaled problems grow the gap back.
#[test]
fn strong_scaling_saturates_at_critical_path() {
    let s = snapshot(256, 612, 3.7e-4);
    let mut times = Vec::new();
    for nodes in [4usize, 16, 64] {
        let r = simulate_cholesky(&s, &hicma_parsec_config(MachineModel::shaheen_ii(), nodes));
        assert!(r.factorization_seconds >= r.critical_path_seconds - 1e-9);
        times.push(r.factorization_seconds);
    }
    assert!(times[1] <= times[0] * 1.01, "4→16 nodes should not slow down: {times:?}");
    assert!(times[2] <= times[1] * 1.01, "16→64 nodes should not slow down: {times:?}");
    // ...and the first scaling step must actually help on this work-bound size
    assert!(times[1] < times[0] * 0.9, "strong scaling invisible: {times:?}");
}

/// The simulator is deterministic: identical inputs give bit-identical
/// makespans (the figure harnesses rely on this for reproducibility).
#[test]
fn simulation_is_deterministic() {
    let s = snapshot(96, 864, 3.7e-4);
    let cfg = hicma_parsec_config(MachineModel::shaheen_ii(), 8);
    let a = simulate_cholesky(&s, &cfg);
    let b = simulate_cholesky(&s, &cfg);
    assert_eq!(a.factorization_seconds.to_bits(), b.factorization_seconds.to_bits());
    assert_eq!(a.comm.bytes, b.comm.bytes);
    assert_eq!(a.comm.messages, b.comm.messages);
}

/// The scaled-problem helper preserves the paper's tiles-per-node ratio.
#[test]
fn scaled_problem_consistency() {
    let p = scaled_problem(11.95e6, 4880, 512, 16);
    assert_eq!(p.nodes, 32);
    // tile size b/√16 = 1220, NT = (N/16)/1220 ≈ 612
    assert_eq!(p.tile_size, 1220);
    assert!((p.nt as f64 - 612.0).abs() < 5.0);
    let ratio_paper = (11.95e6 / 4880.0) / 512.0;
    let ratio_sim = p.nt as f64 / p.nodes as f64;
    assert!(
        (ratio_sim / ratio_paper - 4.0).abs() < 0.2,
        "NT/nodes scales by √S: {ratio_sim} vs {ratio_paper}"
    );
}

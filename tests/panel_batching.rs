//! Panel-batching contract tests: fusing each panel step's trailing-column
//! GEMMs into single engine tasks (`FactorConfig::batch_panels`) is purely
//! a scheduling-granularity change. The factor must stay bit-identical to
//! the unfused run on both engines under every scheduling policy, the
//! fused cost model must be the exact sum of its members, and per-task
//! observability must survive the span-splitting shim.

use hicma_parsec::cholesky::{
    batch_panel_gemms, build_cholesky_dag, factorize, DagConfig, FactorConfig, Session,
};
use hicma_parsec::distribution::TwoDBlockCyclic;
use hicma_parsec::linalg::Matrix;
use hicma_parsec::runtime::SchedPolicy;
use hicma_parsec::tlr::{CompressionConfig, TlrMatrix};

fn rbf_gen(n: usize, corr: f64, seed: u64) -> impl Fn(usize, usize) -> f64 + Sync {
    let phase = (seed % 97) as f64 / 97.0;
    move |i: usize, j: usize| {
        let d = (i as f64 - j as f64) / (n as f64 / corr);
        let v = (-d * d).exp() * (1.0 + 0.05 * ((i + j) as f64 * 0.01 + phase).sin());
        if i == j {
            v + 1e-3
        } else {
            v
        }
    }
}

fn compressed(dense: &Matrix, b: usize, acc: f64) -> TlrMatrix {
    TlrMatrix::from_dense(dense, b, &CompressionConfig::with_accuracy(acc))
}

/// Batching on vs off: bit-identical factors through the shared
/// work-stealing engine and the distributed engine, under every
/// scheduling policy.
#[test]
fn fused_factorization_bit_identical_across_engines_and_policies() {
    let n = 96;
    let b = 24;
    let acc = 1e-8;
    for seed in [3u64, 41] {
        let dense = Matrix::from_fn(n, n, rbf_gen(n, 6.0, seed));

        // Baseline: unfused shared-memory run, default policy.
        let mut cfg_off = FactorConfig::with_accuracy(acc);
        cfg_off.batch_panels = false;
        // Force the batched *distributed* runs below onto the fused path
        // even in obs builds (virtual-time tracing disables the pass).
        cfg_off.collect_trace = false;
        let mut base = compressed(&dense, b, acc);
        factorize(&mut base, &cfg_off).unwrap();
        let l_base = base.to_dense_lower();

        let dist = TwoDBlockCyclic::new(4);
        for policy in SchedPolicy::ALL {
            for batch in [false, true] {
                let mut cfg = cfg_off;
                cfg.sched = policy;
                cfg.batch_panels = batch;

                let mut shared = compressed(&dense, b, acc);
                factorize(&mut shared, &cfg).unwrap();
                assert_eq!(
                    shared.to_dense_lower().as_slice(),
                    l_base.as_slice(),
                    "shared factor differs (policy {}, batch {batch}, seed {seed})",
                    policy.name()
                );

                let mut distributed = compressed(&dense, b, acc);
                Session::distributed(cfg, 4, &dist)
                    .run(&mut distributed)
                    .unwrap();
                assert_eq!(
                    distributed.to_dense_lower().as_slice(),
                    l_base.as_slice(),
                    "distributed factor differs (policy {}, batch {batch}, seed {seed})",
                    policy.name()
                );
            }
        }
    }
}

/// The pass actually fuses on this geometry, and the DES / cost-model
/// invariant holds: each batched task's modeled flops are exactly the sum
/// of its members', leaving the graph total unchanged.
#[test]
fn batched_flops_are_member_sums() {
    let n = 192;
    let b = 24;
    let acc = 1e-8;
    let dense = Matrix::from_fn(n, n, rbf_gen(n, 6.0, 11));
    let m = compressed(&dense, b, acc);
    let dag = build_cholesky_dag(&m.rank_snapshot(), &DagConfig::default());
    let pb = batch_panel_gemms(&dag, None);

    assert!(pb.fused_groups > 0, "test geometry must produce fused panels");
    assert!(pb.graph.len() < dag.graph.len());
    for (bid, group) in pb.members.iter().enumerate() {
        let sum: f64 = group.iter().map(|&t| dag.graph.spec(t).flops).sum();
        assert_eq!(
            pb.graph.spec(bid).flops,
            sum,
            "batched flops must be the exact member sum"
        );
    }
    assert_eq!(pb.graph.total_flops(), dag.graph.total_flops());
    assert!(
        pb.graph.topological_order().is_some(),
        "contracted graph must stay acyclic"
    );
}

/// Fusing dedups the shared `(n, k)` operand edges, so a fused
/// distributed run never ships more messages than the unfused one.
#[test]
fn fused_distributed_run_ships_no_more_messages() {
    let n = 120;
    let b = 24;
    let acc = 1e-8;
    let dense = Matrix::from_fn(n, n, rbf_gen(n, 8.0, 5));
    let dist = TwoDBlockCyclic::new(4);

    let mut cfg = FactorConfig::with_accuracy(acc);
    cfg.collect_trace = false; // virtual-time tracing disables batching

    cfg.batch_panels = false;
    let mut unfused = compressed(&dense, b, acc);
    let comm_off = Session::distributed(cfg, 4, &dist)
        .run(&mut unfused)
        .unwrap()
        .comm
        .unwrap();

    cfg.batch_panels = true;
    let mut fused = compressed(&dense, b, acc);
    let comm_on = Session::distributed(cfg, 4, &dist)
        .run(&mut fused)
        .unwrap()
        .comm
        .unwrap();

    assert_eq!(
        fused.to_dense_lower().as_slice(),
        unfused.to_dense_lower().as_slice()
    );
    assert!(
        comm_on.messages <= comm_off.messages,
        "fusion cannot add messages ({} > {})",
        comm_on.messages,
        comm_off.messages
    );
    assert!(comm_on.bytes <= comm_off.bytes);
}

/// The `BatchObs` span-splitting shim keeps the trace at original-task
/// granularity: a fused shared-memory run still records one span per DAG
/// task, and the per-class wall-clock attribution stays populated.
#[cfg(feature = "obs")]
#[test]
fn fused_run_keeps_per_task_attribution() {
    let n = 120;
    let b = 24;
    let acc = 1e-6;
    let dense = Matrix::from_fn(n, n, rbf_gen(n, 6.0, 23));
    let mut m = compressed(&dense, b, acc);
    let mut cfg = FactorConfig::with_accuracy(acc);
    cfg.nthreads = 2;
    cfg.batch_panels = true;
    cfg.collect_trace = true;
    let report = factorize(&mut m, &cfg).unwrap();
    let metrics = report.metrics.expect("obs build must trace");
    assert_eq!(
        metrics.trace.records.len(),
        report.dag_tasks,
        "span splitting must record every original task"
    );
    assert!(report.breakdown.gemm > 0.0);
    assert!(metrics.critical_path_seconds > 0.0);
    assert!(metrics.trace.breakdown().gemm > 0.0);
}

//! Integration tests spanning the whole stack: geometry → Hilbert → RBF
//! kernel → TLR compression → trimmed task-DAG factorization → solve,
//! validated against the dense reference pipeline.

use hicma_parsec::cholesky::{
    factorization_residual, factorize, solve_residual, solve_tlr, FactorConfig,
};
use hicma_parsec::linalg::Matrix;
use hicma_parsec::mesh::deform::{solve_dense, Displacements};
use hicma_parsec::mesh::geometry::{virus_population, VirusConfig};
use hicma_parsec::mesh::hilbert::{apply_permutation, hilbert_sort};
use hicma_parsec::mesh::GaussianRbf;
use hicma_parsec::tlr::{CompressionConfig, TlrMatrix};

/// Shared fixture: a Hilbert-ordered virus cloud and its kernel.
fn fixture(n_viruses: usize, per_virus: usize, seed: u64) -> (Vec<hicma_parsec::mesh::Point3>, GaussianRbf) {
    let cfg = VirusConfig { points_per_virus: per_virus, ..Default::default() };
    let raw = virus_population(n_viruses, &cfg, seed);
    let points = apply_permutation(&raw, &hilbert_sort(&raw));
    let kernel = GaussianRbf::from_min_distance(&points);
    (points, kernel)
}

#[test]
fn rbf_pipeline_factorizes_and_solves() {
    let (points, kernel) = fixture(3, 250, 5);
    let n = points.len();
    let accuracy = 1e-6;
    let ccfg = CompressionConfig::with_accuracy(accuracy);
    let mut a = TlrMatrix::from_generator(n, 96, kernel.generator(&points), &ccfg);
    let dense = Matrix::from_fn(n, n, |i, j| kernel.matrix_entry(&points, i, j));

    let report = factorize(&mut a, &FactorConfig::with_accuracy(accuracy)).expect("SPD");
    assert!(report.dag_tasks <= report.dense_dag_tasks);

    let res = factorization_residual(&dense, &a);
    assert!(res < accuracy * 1e3, "factorization residual {res}");

    let x_true: Vec<f64> = (0..n).map(|i| ((i % 17) as f64 - 8.0) / 8.0).collect();
    let b = dense.matvec(&x_true);
    let mut x = b.clone();
    solve_tlr(&a, &mut x);
    let sres = solve_residual(&dense, &x, &b);
    assert!(sres < 1e-4, "solve residual {sres}");
}

#[test]
fn trimmed_and_untrimmed_agree_numerically() {
    let (points, kernel) = fixture(2, 200, 9);
    let n = points.len();
    let accuracy = 1e-7;
    let ccfg = CompressionConfig::with_accuracy(accuracy);
    let mut a_t = TlrMatrix::from_generator(n, 80, kernel.generator(&points), &ccfg);
    let mut a_u = TlrMatrix::from_generator(n, 80, kernel.generator(&points), &ccfg);
    let mut cfg = FactorConfig::with_accuracy(accuracy);
    cfg.trimmed = true;
    factorize(&mut a_t, &cfg).unwrap();
    cfg.trimmed = false;
    factorize(&mut a_u, &cfg).unwrap();
    let lt = a_t.to_dense_lower();
    let lu = a_u.to_dense_lower();
    let diff = hicma_parsec::linalg::norms::relative_diff(&lt, &lu);
    assert!(diff < 1e-10, "trimming changed the numbers: {diff}");
}

#[test]
fn mesh_deformation_tlr_matches_dense() {
    let (points, kernel) = fixture(3, 150, 13);
    let n = points.len();
    let accuracy = 1e-8;

    // Boundary condition: rigid shift of everything (exactly representable).
    let d_b = Displacements::translation(n, 0.01, -0.02, 0.005);
    let reference = solve_dense(&points, kernel, &d_b).expect("SPD");

    let ccfg = CompressionConfig::with_accuracy(accuracy);
    let mut a = TlrMatrix::from_generator(n, 64, kernel.generator(&points), &ccfg);
    factorize(&mut a, &FactorConfig::with_accuracy(accuracy)).unwrap();
    let mut ax = d_b.dx.clone();
    solve_tlr(&a, &mut ax);

    let worst = ax
        .iter()
        .zip(&reference.alpha.dx)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    assert!(worst < 1e-4, "TLR coefficients deviate from dense by {worst}");
}

#[test]
fn aca_assembly_matches_dense_assembly() {
    // §IX future work: direct compressed assembly must produce an operator
    // that factorizes to the same accuracy with far fewer evaluations.
    let (points, kernel) = fixture(3, 200, 29);
    let n = points.len();
    let accuracy = 1e-6;
    let ccfg = CompressionConfig::with_accuracy(accuracy);
    let (mut a_aca, evals) =
        TlrMatrix::from_generator_aca(n, 80, kernel.generator(&points), &ccfg);
    let nt = a_aca.nt();
    let dense_evals = nt * (nt + 1) / 2 * 80 * 80;
    assert!(evals < dense_evals, "ACA must save evaluations: {evals} vs {dense_evals}");

    let dense = Matrix::from_fn(n, n, |i, j| kernel.matrix_entry(&points, i, j));
    factorize(&mut a_aca, &FactorConfig::with_accuracy(accuracy)).expect("SPD");
    let res = factorization_residual(&dense, &a_aca);
    assert!(res < accuracy * 1e3, "ACA-assembled residual {res}");
}

#[test]
fn distributed_ranks_match_shared_memory_on_rbf() {
    // The full §VII story on real data: factorize the RBF operator across
    // emulated distributed-memory ranks with the band data distribution
    // and diamond execution remapping, and require bit-identical factors
    // vs the shared-memory run.
    use hicma_parsec::cholesky::Session;
    use hicma_parsec::distribution::DiamondDistribution;

    let (points, kernel) = fixture(2, 180, 71);
    let n = points.len();
    let accuracy = 1e-7;
    let ccfg = CompressionConfig::with_accuracy(accuracy);
    let mut shared = TlrMatrix::from_generator(n, 72, kernel.generator(&points), &ccfg);
    let mut distr = TlrMatrix::from_generator(n, 72, kernel.generator(&points), &ccfg);
    let fcfg = FactorConfig::with_accuracy(accuracy);
    factorize(&mut shared, &fcfg).unwrap();
    Session::distributed(fcfg, 6, &DiamondDistribution::new(6)).run(&mut distr).unwrap();
    let diff = hicma_parsec::linalg::norms::relative_diff(
        &distr.to_dense_lower(),
        &shared.to_dense_lower(),
    );
    assert!(diff < 1e-12, "distributed RBF factorization deviates: {diff}");
}

#[test]
fn refined_solve_reaches_machine_accuracy_from_loose_threshold() {
    use hicma_parsec::cholesky::solve_refined;
    let (points, kernel) = fixture(2, 150, 83);
    let n = points.len();
    let loose = 1e-4; // the paper's production threshold
    let ccfg = CompressionConfig::with_accuracy(loose);
    let a = TlrMatrix::from_generator(n, 64, kernel.generator(&points), &ccfg);
    let mut l = TlrMatrix::from_generator(n, 64, kernel.generator(&points), &ccfg);
    factorize(&mut l, &FactorConfig::with_accuracy(loose)).unwrap();
    let dense = Matrix::from_fn(n, n, |i, j| kernel.matrix_entry(&points, i, j));
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) / 5.0).collect();
    let b = dense.matvec(&x_true);
    let mut x = b.clone();
    let history = solve_refined(&a, &l, &mut x, 8);
    let final_res = *history.last().unwrap();
    assert!(
        final_res < 1e-12,
        "refinement from ε=1e-4 must reach near-machine residual: {history:?}"
    );
}

#[test]
fn compression_density_drops_with_smaller_delta() {
    let (points, kernel) = fixture(3, 200, 21);
    let n = points.len();
    let ccfg = CompressionConfig::with_accuracy(1e-6);
    let sharp = GaussianRbf { delta: kernel.delta, nugget: 0.0 };
    let smooth = GaussianRbf { delta: kernel.delta * 16.0, nugget: 0.0 };
    let a_sharp = TlrMatrix::from_generator(n, 64, sharp.generator(&points), &ccfg);
    let a_smooth = TlrMatrix::from_generator(n, 64, smooth.generator(&points), &ccfg);
    assert!(
        a_sharp.density() < a_smooth.density(),
        "sharp {} vs smooth {}",
        a_sharp.density(),
        a_smooth.density()
    );
}

/// Sequential right-looking TLR Cholesky using the kept pre-PR
/// reference kernels (explicit-Q, allocating recompression) — the
/// ground truth the workspace engine must reproduce.
fn reference_factorize(a: &mut hicma_parsec::tlr::TlrMatrix, cfg: &CompressionConfig) {
    use hicma_parsec::tlr::kernels::{potrf_kernel, reference, syrk_kernel, trsm_kernel};
    let nt = a.nt();
    for k in 0..nt {
        potrf_kernel(a.tile_mut(k, k)).expect("SPD");
        let lkk = a.tile(k, k).clone();
        for i in k + 1..nt {
            trsm_kernel(&lkk, a.tile_mut(i, k));
        }
        for i in k + 1..nt {
            let aik = a.tile(i, k).clone();
            syrk_kernel(&aik, a.tile_mut(i, i));
            for j in k + 1..i {
                let ajk = a.tile(j, k).clone();
                reference::gemm_kernel_reference(&aik, &ajk, a.tile_mut(i, j), cfg);
            }
        }
    }
}

/// The workspace-backed implicit-Q factorization path agrees with a
/// sequential factorization built on the pre-PR reference kernels to
/// within the recompression accuracy headroom, on a real RBF problem.
#[test]
fn workspace_factorization_matches_reference_kernels() {
    let (points, kernel) = fixture(2, 220, 31);
    let n = points.len();
    let accuracy = 1e-7;
    let ccfg = CompressionConfig::with_accuracy(accuracy);
    let mut a_new = TlrMatrix::from_generator(n, 80, kernel.generator(&points), &ccfg);
    let mut a_ref = TlrMatrix::from_generator(n, 80, kernel.generator(&points), &ccfg);

    let mut fcfg = FactorConfig::with_accuracy(accuracy);
    fcfg.trimmed = false; // reference loop applies every update
    factorize(&mut a_new, &fcfg).expect("SPD");
    reference_factorize(&mut a_ref, &ccfg);

    let ln = a_new.to_dense_lower();
    let lr = a_ref.to_dense_lower();
    let diff = hicma_parsec::linalg::norms::relative_diff(&ln, &lr);
    assert!(
        diff < 10.0 * accuracy,
        "workspace vs reference factorization diverged: {diff}"
    );
}

//! Tile-integrity integration tests: seeded silent-data-corruption
//! (bit-flips in store tiles and message payloads) through the full
//! `Session` pipeline must be detected with zero false negatives,
//! healed from lineage, and leave the factor bit-identical to the
//! fault-free run — composing with message loss, rank crashes, comm
//! accounting and (in `obs` builds) tracing. These tests run in both
//! default and `--features obs` CI modes.

use hicma_parsec::cholesky::{factorize, FactorConfig, IntegrityMode, RunError, Session};
use hicma_parsec::distribution::{DiamondDistribution, TileDistribution};
use hicma_parsec::linalg::norms::relative_diff;
use hicma_parsec::runtime::{EngineError, FaultPlan, FtConfig, FtError, RunEvent};
use hicma_parsec::tlr::{CompressionConfig, TlrMatrix};

const N: usize = 96;
const B: usize = 24;
const ACC: f64 = 1e-8;

/// A smooth synthetic SPD generator (Gaussian kernel + diagonal bump).
fn gen(i: usize, j: usize) -> f64 {
    let d = (i as f64 - j as f64) / (N as f64 / 6.0);
    let v = (-d * d).exp();
    if i == j {
        v + 1e-3
    } else {
        v
    }
}

fn matrix() -> TlrMatrix {
    TlrMatrix::from_generator(N, B, gen, &CompressionConfig::with_accuracy(ACC))
}

/// The shared-memory reference factor every corrupted run must match
/// bit for bit.
fn reference_factor() -> hicma_parsec::linalg::Matrix {
    let mut m = matrix();
    factorize(&mut m, &FactorConfig::with_accuracy(ACC)).unwrap();
    m.to_dense_lower()
}

#[test]
fn store_corruption_is_detected_healed_and_numerically_invisible() {
    // Flip one bit in tile (1,0) on its owner rank mid-run. The exact
    // digest must catch it at the next read boundary (or the final
    // sweep), lineage healing must recompute it, and the factor must be
    // bit-identical to the fault-free run — a corrupting plan arms the
    // integrity layer automatically, no config flag needed.
    let reference = reference_factor();
    let dist = DiamondDistribution::new(4);
    let victim_rank = dist.owner(1, 0);
    let plan = FaultPlan::new(11).with_store_corruption(victim_rank, 1, 0, 3.0);
    let ft = FtConfig::with_plan(plan);
    let mut m = matrix();
    let outcome = Session::distributed(FactorConfig::with_accuracy(ACC), 4, &dist)
        .with_fault_layer(&ft)
        .run(&mut m)
        .expect("a single store strike is healable")
        .ft
        .expect("fault layer was configured");

    assert_eq!(
        outcome.stats.store_corruptions_injected, 1,
        "the strike must land"
    );
    assert_eq!(
        outcome.stats.corruptions_detected, 1,
        "zero false negatives"
    );
    assert_eq!(
        outcome.stats.corruptions_healed, 1,
        "the strike must be healed"
    );
    let detected = outcome
        .events
        .iter()
        .any(|e| matches!(e, RunEvent::CorruptionDetected { i: 1, j: 0, .. }));
    let healed = outcome
        .events
        .iter()
        .any(|e| matches!(e, RunEvent::Healed { i: 1, j: 0, .. }));
    assert!(
        detected && healed,
        "detection and heal must be reported as events"
    );
    let diff = relative_diff(&m.to_dense_lower(), &reference);
    assert!(
        diff == 0.0,
        "healing must be numerically invisible, got diff {diff}"
    );
}

#[test]
fn message_corruption_is_nacked_retransmitted_and_invisible() {
    // Corrupt a large fraction of cross-rank payloads in flight. Every
    // mutated copy must be caught at delivery (detected == corrupted),
    // NACKed (nacks == detected), and re-sent until a clean copy lands;
    // the comm ledger stays consistent and the factor exact.
    let reference = reference_factor();
    let dist = DiamondDistribution::new(4);
    let plan = FaultPlan::new(21).with_message_corruption(0.4);
    let ft = FtConfig::with_plan(plan);
    let mut m = matrix();
    let out = Session::distributed(FactorConfig::with_accuracy(ACC), 4, &dist)
        .with_fault_layer(&ft)
        .run(&mut m)
        .expect("message corruption is always recoverable via NACK/retransmit");
    let stats = &out.ft.as_ref().unwrap().stats;
    let comm = out.comm.as_ref().unwrap();

    assert!(stats.messages_corrupted > 0, "p=0.4 must corrupt something");
    assert_eq!(
        stats.corruptions_detected, stats.messages_corrupted,
        "zero false negatives"
    );
    assert_eq!(
        stats.nacks_sent, stats.corruptions_detected,
        "every detection NACKs"
    );
    assert_eq!(stats.sends_abandoned, 0, "NACK/retransmit must converge");
    assert_eq!(
        comm.messages as usize,
        stats.messages_sent + stats.retransmissions,
        "comm ledger counts every attempt"
    );
    let diff = relative_diff(&m.to_dense_lower(), &reference);
    assert!(diff == 0.0, "message corruption changed the factor: {diff}");
}

#[test]
fn integrity_layer_has_zero_false_positives_on_lossy_network() {
    // verify_integrity armed explicitly, aggressive loss/duplication/
    // ack-loss but NO corruption: every digest check must pass, all
    // corruption counters stay zero, and the factor stays exact.
    let reference = reference_factor();
    let dist = DiamondDistribution::new(4);
    let plan = FaultPlan::new(5)
        .with_drops(0.25)
        .with_duplicates(0.2)
        .with_ack_drops(0.2);
    let ft = FtConfig::with_plan(plan);
    let mut cfg = FactorConfig::with_accuracy(ACC);
    cfg.integrity = IntegrityMode::VerifyReads;
    let mut m = matrix();
    let out = Session::distributed(cfg, 4, &dist)
        .with_fault_layer(&ft)
        .run(&mut m)
        .expect("lossy but uncorrupted plan is survivable");
    let stats = &out.ft.as_ref().unwrap().stats;

    assert!(stats.messages_dropped > 0, "loss injection must bite");
    assert_eq!(stats.messages_corrupted, 0);
    assert_eq!(stats.corruptions_detected, 0, "no false positives");
    assert_eq!(stats.corruptions_healed, 0);
    assert_eq!(stats.nacks_sent, 0);
    let diff = relative_diff(&m.to_dense_lower(), &reference);
    assert!(diff == 0.0, "integrity layer perturbed a clean run: {diff}");
}

#[test]
fn heal_escalation_surfaces_as_typed_error_not_panic() {
    // With the heal budget set to zero the first detection must
    // escalate to the typed IntegrityError — never a panic, never a
    // silently wrong factor.
    let dist = DiamondDistribution::new(4);
    let victim_rank = dist.owner(1, 0);
    let plan = FaultPlan::new(11).with_store_corruption(victim_rank, 1, 0, 3.0);
    let mut ft = FtConfig::with_plan(plan);
    ft.retry.max_heal_retries = 0;
    let mut m = matrix();
    let err = Session::distributed(FactorConfig::with_accuracy(ACC), 4, &dist)
        .with_fault_layer(&ft)
        .run(&mut m)
        .expect_err("zero heal budget must escalate");
    match err {
        RunError::Engine(EngineError::Fault(FtError::Integrity(e))) => {
            assert_eq!(e.data, (1, 0), "error must name the corrupted tile");
        }
        other => panic!("expected a typed integrity error, got {other:?}"),
    }
}

#[test]
fn shared_session_integrity_modes_are_clean_and_exact() {
    // The shared-memory digest side-array in both armed modes:
    // `Maintain` reseals every write and sweeps the finished factor;
    // `VerifyReads` additionally checks each version at its first read.
    // With nothing corrupting tiles neither may fire, and the factor
    // must match the unverified run exactly.
    let reference = reference_factor();
    for mode in [IntegrityMode::Maintain, IntegrityMode::VerifyReads] {
        let mut cfg = FactorConfig::with_accuracy(ACC);
        cfg.integrity = mode;
        let mut m = matrix();
        factorize(&mut m, &cfg).expect("verification of a clean run must pass");
        let diff = relative_diff(&m.to_dense_lower(), &reference);
        assert!(
            diff == 0.0,
            "digest side-array perturbed the factor ({mode:?}): {diff}"
        );
    }
}

#[test]
fn corruption_composes_with_crash_loss_and_trace() {
    // The acceptance scenario: message corruption + a store strike + a
    // rank crash + message loss in ONE run, with tracing requested. All
    // three recovery mechanisms (retransmit, lineage heal, migration)
    // must compose and the factor must still be bit-identical.
    let reference = reference_factor();
    let dist = DiamondDistribution::new(4);
    let victim_rank = dist.owner(2, 1);
    let plan = FaultPlan::new(7)
        .with_drops(0.1)
        .with_message_corruption(0.2)
        .with_store_corruption(victim_rank, 2, 1, 5.0)
        .with_crash(3, 12.0);
    let ft = FtConfig::with_plan(plan);
    let mut cfg = FactorConfig::with_accuracy(ACC);
    cfg.collect_trace = true;
    let mut m = matrix();
    let out = Session::distributed(cfg, 4, &dist)
        .with_fault_layer(&ft)
        .run(&mut m)
        .expect("composed plan is survivable: one crash, three survivors");
    let ftout = out.ft.as_ref().unwrap();

    assert_eq!(ftout.stats.crashes, 1, "the scheduled crash must fire");
    assert_eq!(ftout.stats.store_corruptions_injected, 1);
    assert!(
        ftout.stats.messages_corrupted > 0,
        "corruption injection must bite"
    );
    assert!(
        ftout.stats.corruptions_detected >= ftout.stats.messages_corrupted,
        "every corrupted payload must be caught"
    );
    assert!(
        out.comm.is_some(),
        "comm accounting composes with the integrity layer"
    );
    if let Some(trace) = &out.trace {
        assert!(
            !trace.records.is_empty(),
            "requested trace must have records"
        );
    }
    let diff = relative_diff(&m.to_dense_lower(), &reference);
    assert!(diff == 0.0, "composed faults changed the factor: {diff}");
}

#[test]
fn corruption_run_is_deterministic() {
    // Same seed, same plan → byte-for-byte identical fault accounting.
    // Detection and healing are part of the deterministic virtual-time
    // schedule, not a source of nondeterminism.
    let dist = DiamondDistribution::new(4);
    let run = || {
        let plan = FaultPlan::new(21)
            .with_message_corruption(0.3)
            .with_drops(0.1);
        let ft = FtConfig::with_plan(plan);
        let mut m = matrix();
        let out = Session::distributed(FactorConfig::with_accuracy(ACC), 4, &dist)
            .with_fault_layer(&ft)
            .run(&mut m)
            .expect("survivable");
        (out.ft.unwrap().stats, out.comm.unwrap())
    };
    let (s1, c1) = run();
    let (s2, c2) = run();
    assert_eq!(s1, s2, "fault accounting must be deterministic");
    assert_eq!(
        c1.messages, c2.messages,
        "comm ledger must be deterministic"
    );
}

//! Observability-layer integration and property tests: trace invariants
//! under adversarial timestamps, Chrome-trace export round-trips, the
//! shared exporter over both execution engines, and crash/recovery event
//! accounting on the fault-tolerant distributed runtime.

use hicma_parsec::cholesky::simulate::{simulate_cholesky, SimConfig};
use hicma_parsec::cholesky::{DriftSpec, FactorConfig, Session};
use hicma_parsec::distribution::{DiamondDistribution, TileDistribution};
use hicma_parsec::runtime::graph::{DataRef, TaskClass};
use hicma_parsec::runtime::obs::json::Json;
use hicma_parsec::runtime::obs::{
    chrome_trace_json, chrome_trace_json_with_events, RunEvent, RunMetrics,
};
use hicma_parsec::runtime::trace::{TaskRecord, Trace};
use hicma_parsec::runtime::{Counter, FaultPlan, FtConfig, Gauge, MachineModel, Registry};
use hicma_parsec::tlr::{CompressionConfig, SyntheticRankModel, TlrMatrix};
use proptest::prelude::*;

/// Deterministic pseudo-random trace, including (with probability ~1/8)
/// adversarially reversed spans (`end < start`) and queue times after
/// start — the shapes crash re-execution and clock skew produce.
fn seeded_trace(seed: u64, ntasks: usize, nprocs: usize) -> Trace {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(12345);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let classes =
        [TaskClass::Potrf, TaskClass::Trsm, TaskClass::Syrk, TaskClass::Gemm, TaskClass::Other];
    let mut trace = Trace::default();
    for t in 0..ntasks {
        let start = (next() % 10_000) as f64 * 1e-3;
        let span = (next() % 1_000) as f64 * 1e-3;
        let reversed = next() % 8 == 0;
        let end = if reversed { start - span } else { start + span };
        let queued = if next() % 8 == 0 { start + 0.5 } else { start - (next() % 100) as f64 * 1e-3 };
        trace.push_record(TaskRecord {
            task: t,
            class: classes[(next() % 5) as usize],
            proc: (next() as usize) % nprocs,
            data: Some(DataRef { i: t, j: t / 2 }),
            queued,
            start,
            end,
        });
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The per-class breakdown is exactly the sum of the clamped span
    /// durations — no time is invented or lost, even for reversed spans.
    #[test]
    fn breakdown_total_is_sum_of_clamped_durations(seed in 0u64..1000) {
        let trace = seeded_trace(seed, 1 + (seed as usize % 60), 4);
        let sum: f64 = trace.records.iter().map(|r| r.duration()).sum();
        let total = trace.breakdown().total();
        prop_assert!((total - sum).abs() <= 1e-12 * sum.max(1.0), "{total} vs {sum}");
        // And per-proc busy partitions the same total.
        let busy: f64 = trace.busy_per_proc(4).iter().sum();
        prop_assert!((busy - sum).abs() <= 1e-12 * sum.max(1.0));
    }

    /// Idle fractions stay in [0, 1] whatever the trace looks like, and
    /// derived run metrics stay finite.
    #[test]
    fn idle_fractions_in_unit_interval(seed in 0u64..1000) {
        let nprocs = 1 + (seed as usize % 7);
        let trace = seeded_trace(seed, 1 + (seed as usize % 40), nprocs);
        for f in trace.idle_fraction(nprocs) {
            prop_assert!((0.0..=1.0).contains(&f), "idle fraction {f} out of range");
        }
        let m = RunMetrics::from_trace("prop", &trace, nprocs);
        prop_assert!(m.makespan.is_finite() && m.makespan >= 0.0);
        prop_assert!(m.load_imbalance.is_finite() && m.load_imbalance >= 1.0);
        prop_assert!(m.total_queue_wait.is_finite() && m.total_queue_wait >= 0.0);
    }

    /// The Chrome-trace export is valid JSON that round-trips through the
    /// parser with monotone non-decreasing timestamps and non-negative
    /// durations — what Perfetto requires to load a file.
    #[test]
    fn chrome_trace_round_trips(seed in 0u64..1000) {
        let n = 1 + (seed as usize % 50);
        let trace = seeded_trace(seed, n, 3);
        let text = chrome_trace_json(&trace, "prop");
        let doc = Json::parse(&text).expect("exporter must emit valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        prop_assert_eq!(spans.len(), n, "one X event per record");
        let mut last_ts = f64::NEG_INFINITY;
        for e in spans {
            let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
            let dur = e.get("dur").and_then(Json::as_f64).expect("dur");
            prop_assert!(ts >= last_ts, "timestamps must be sorted: {ts} after {last_ts}");
            prop_assert!(ts >= 0.0 && dur >= 0.0, "ts {ts} dur {dur}");
            last_ts = ts;
        }
    }
}

/// Regression: a span whose `end` precedes its `start` (crash
/// re-execution under skewed clocks) counts as zero-length everywhere
/// instead of subtracting busy time or producing idle fractions > 1.
#[test]
fn reversed_span_is_clamped_not_subtracted() {
    let mut trace = Trace::default();
    trace.push(TaskClass::Gemm, 0, 5.0, 2.0); // reversed
    trace.push(TaskClass::Gemm, 0, 2.0, 3.0); // normal
    assert_eq!(trace.records[0].duration(), 0.0);
    assert_eq!(trace.breakdown().total(), 1.0);
    assert_eq!(trace.makespan(), 3.0, "makespan is the maximum end time");
    let idle = trace.idle_fraction(1);
    assert!((0.0..=1.0).contains(&idle[0]));
}

/// The empty trace is a fixed point: zero makespan, empty breakdown,
/// fully idle workers, and a parseable (if boring) Chrome trace.
#[test]
fn empty_trace_exports_cleanly() {
    let trace = Trace::default();
    assert_eq!(trace.makespan(), 0.0);
    assert_eq!(trace.breakdown().total(), 0.0);
    assert_eq!(trace.idle_fraction(3), vec![1.0; 3]);
    let doc = Json::parse(&chrome_trace_json(&trace, "empty")).unwrap();
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    assert!(events.iter().all(|e| e.get("ph").and_then(Json::as_str) != Some("X")));
}

/// One exporter, both engines: a DES run's virtual-clock trace feeds the
/// same Chrome-trace writer and metrics report as the wall-clock path.
#[test]
fn des_trace_uses_the_same_exporter() {
    let snap = SyntheticRankModel::from_application(16, 256, 3.7e-4, 1e-4).snapshot();
    let cfg = SimConfig::hicma_parsec(MachineModel::shaheen_ii(), 4);
    let r = simulate_cholesky(&snap, &cfg);
    assert!(!r.trace.records.is_empty(), "DES must trace every task");

    let doc = Json::parse(&chrome_trace_json(&r.trace, "des")).expect("valid Chrome trace");
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let nspans = events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).count();
    assert_eq!(nspans, r.trace.records.len());

    let m = RunMetrics::from_trace(cfg.plan.name(), &r.trace, 4)
        .with_comm(r.comm.bytes, r.comm.messages)
        .with_critical_path(r.critical_path_seconds);
    assert!(m.makespan > 0.0);
    assert!(m.comm_messages > 0, "4 ranks must communicate");
    assert!(m.efficiency_vs_critical_path > 0.0 && m.efficiency_vs_critical_path <= 1.0);
    assert_eq!(m.busy.len(), 4);
    // The DES busy bookkeeping is *derived from the trace*, so the two
    // views can never drift apart.
    let from_trace: f64 = r.trace.busy_per_proc(4).iter().sum();
    let from_metrics: f64 = m.busy.iter().sum();
    assert!((from_trace - from_metrics).abs() < 1e-12);
}

/// A traced fault-tolerant run with injected crashes records a matching
/// Crash/Recovery event pair, in order, with consistent payloads.
#[test]
fn ft_run_records_matching_crash_recovery_pairs() {
    let n = 120;
    let b = 24;
    let gen = |i: usize, j: usize| {
        let d = (i as f64 - j as f64) / (n as f64 / 8.0);
        let v: f64 = (-d * d).exp();
        if i == j {
            v + 1e-3
        } else {
            v
        }
    };
    let ccfg = CompressionConfig::with_accuracy(1e-8);
    let mut m = TlrMatrix::from_generator(n, b, gen, &ccfg);
    let fcfg = FactorConfig::with_accuracy(1e-8);
    let plan = FaultPlan::new(9).with_drops(0.1).with_crash(1, 10.0).with_crash(3, 30.0);
    let ft = FtConfig::with_plan(plan);
    let run = Session::distributed(fcfg, 6, &DiamondDistribution::new(6))
        .with_fault_layer(&ft)
        .run(&mut m)
        .expect("two crashes among six ranks are survivable");
    let outcome = run.ft.expect("fault layer was configured");

    assert_eq!(outcome.stats.crashes * 2, outcome.events.len());
    assert!(!outcome.events.is_empty(), "scheduled crashes must be recorded");
    let mut last_at = f64::NEG_INFINITY;
    for pair in outcome.events.chunks(2) {
        let RunEvent::Crash { rank, at: crash_at } = pair[0] else {
            panic!("even event must be a crash, got {:?}", pair[0]);
        };
        let RunEvent::Recovery { failed, survivor, at: rec_at } = pair[1] else {
            panic!("odd event must be a recovery, got {:?}", pair[1]);
        };
        assert_eq!(failed, rank, "recovery must reference the crashed rank");
        assert_ne!(survivor, rank, "a dead rank cannot recover itself");
        assert!(crash_at <= rec_at, "recovery cannot precede its crash");
        assert!(last_at <= crash_at, "events must be time-ordered");
        last_at = rec_at;
        // Events serialize for the metrics dump.
        let j = pair[0].to_json().to_string();
        assert!(j.contains("crash"), "{j}");
    }
    assert!(outcome.stats.bytes_sent >= 8 * outcome.stats.messages_sent as u64);
}

/// End-to-end acceptance (needs `--features obs`): a traced shared-memory
/// factorization of an RBF-structured problem exports a valid Chrome
/// trace and a metrics report with per-class, per-worker, and
/// rank-evolution content.
#[cfg(feature = "obs")]
#[test]
fn traced_rbf_factorization_exports_chrome_trace_and_metrics() {
    use hicma_parsec::cholesky::factorize;
    use hicma_parsec::mesh::geometry::{virus_population, VirusConfig};
    use hicma_parsec::mesh::hilbert::{apply_permutation, hilbert_sort};
    use hicma_parsec::mesh::GaussianRbf;

    let vcfg = VirusConfig { points_per_virus: 180, ..Default::default() };
    let raw = virus_population(2, &vcfg, 42);
    let points = apply_permutation(&raw, &hilbert_sort(&raw));
    let n = points.len();
    let kernel = GaussianRbf::from_min_distance(&points);
    let ccfg = CompressionConfig::with_accuracy(1e-6);
    let mut a = TlrMatrix::from_generator(n, 72, kernel.generator(&points), &ccfg);

    let mut fcfg = FactorConfig::with_accuracy(1e-6);
    fcfg.nthreads = 2;
    let report = factorize(&mut a, &fcfg).expect("RBF operator is SPD");
    let metrics = report.metrics.expect("obs build traces by default");

    // Chrome trace: parseable, one span per executed task, named by class
    // and tile coordinates.
    assert_eq!(metrics.trace.records.len(), report.dag_tasks);
    let text = chrome_trace_json(&metrics.trace, "rbf");
    let doc = Json::parse(&text).expect("valid Chrome trace JSON");
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let spans: Vec<&Json> =
        events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
    assert_eq!(spans.len(), report.dag_tasks);
    assert!(spans
        .iter()
        .any(|e| e.get("name").and_then(Json::as_str).is_some_and(|s| s.starts_with("POTRF"))));

    // Metrics report: class breakdown, worker occupancy, rank evolution.
    let rm = metrics.run_metrics("rbf-wallclock");
    assert!(rm.breakdown.potrf > 0.0 && rm.breakdown.total() > 0.0);
    assert_eq!(rm.idle_fraction.len(), 2);
    assert!(rm.idle_fraction.iter().all(|f| (0.0..=1.0).contains(f)));
    assert!(rm.load_imbalance >= 1.0);
    assert!(metrics.rank_evolution.events() > 0, "GEMM recompressions must be logged");
    assert!(metrics.rank_evolution.mean_in() >= metrics.rank_evolution.mean_out());
    let csv = rm.to_csv();
    assert!(csv.contains("makespan_s") && csv.contains("idle_fraction_p1"), "{csv}");
    let rendered = metrics.rank_evolution.render(16);
    assert!(rendered.contains("recompressions"), "{rendered}");
}

/// Integrity incidents ride the same timeline as crashes: a run with an
/// injected store corruption exports `corruption_detected` and
/// `corruption_healed` instant events in its Chrome trace, even in
/// builds without the `obs` feature (the event channel is always on).
#[test]
fn corruption_events_export_as_chrome_instants() {
    let n = 96;
    let b = 24;
    let gen = |i: usize, j: usize| {
        let d = (i as f64 - j as f64) / (n as f64 / 6.0);
        let v: f64 = (-d * d).exp();
        if i == j {
            v + 1e-3
        } else {
            v
        }
    };
    let ccfg = CompressionConfig::with_accuracy(1e-8);
    let mut m = TlrMatrix::from_generator(n, b, gen, &ccfg);
    let dist = DiamondDistribution::new(4);
    let victim = dist.owner(1, 0);
    let plan = FaultPlan::new(11).with_store_corruption(victim, 1, 0, 3.0);
    let ft = FtConfig::with_plan(plan);
    let outcome = Session::distributed(FactorConfig::with_accuracy(1e-8), 4, &dist)
        .with_fault_layer(&ft)
        .run(&mut m)
        .expect("a single store strike is healable")
        .ft
        .expect("fault layer was configured");
    assert_eq!(outcome.stats.corruptions_detected, 1);
    assert_eq!(outcome.stats.corruptions_healed, 1);

    // The exporter accepts the event stream with or without a task
    // trace; an empty trace keeps this assertion obs-feature-free.
    let text = chrome_trace_json_with_events(&Trace::default(), &outcome.events, "integrity");
    let doc = Json::parse(&text).expect("valid Chrome trace JSON");
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let instant_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(instant_names.contains(&"corruption_detected"), "{instant_names:?}");
    assert!(instant_names.contains(&"corruption_healed"), "{instant_names:?}");
}

/// The metrics registry is on by default and feeds `RunOutcome::registry`
/// on shared-memory runs: task counters, per-class busy time, and the
/// workspace high-water mark all land in the snapshot. With the
/// runtime's `metrics` feature compiled out the snapshot is still
/// present, just empty — callers never need a `cfg` gate.
#[test]
fn default_shared_run_populates_the_registry() {
    let n = 96;
    let b = 24;
    let gen = |i: usize, j: usize| {
        let d = (i as f64 - j as f64) / (n as f64 / 6.0);
        let v: f64 = (-d * d).exp();
        if i == j {
            v + 1e-3
        } else {
            v
        }
    };
    let ccfg = CompressionConfig::with_accuracy(1e-8);
    let mut m = TlrMatrix::from_generator(n, b, gen, &ccfg);
    let mut fcfg = FactorConfig::with_accuracy(1e-8);
    fcfg.nthreads = 2;
    let out = Session::shared(fcfg).run(&mut m).expect("SPD");
    let snap = out.registry.expect("collect_metrics defaults to on");
    if Registry::compiled() {
        // Panel batching (on by default) retires *fused* tasks, so the
        // counter is bounded by — not equal to — the DAG task count.
        let executed = snap.counter(Counter::TasksExecuted);
        assert!(executed > 0, "retired tasks must be counted");
        assert!(executed as usize <= out.report.dag_tasks, "{executed} > {}", out.report.dag_tasks);
        assert!(snap.class_busy_seconds().total() > 0.0, "kernels take time");
        assert!(snap.counter(Counter::TasksEnqueued) >= executed);
        assert!(snap.gauge(Gauge::ArenaHighWaterBytes) > 0.0, "workspaces allocate");
        // The snapshot exports to both wire formats without loss of the
        // headline counter.
        let j = snap.to_json().to_string();
        assert!(j.contains("tasks_executed"), "{j}");
        let mut prom = String::new();
        snap.write_prometheus(&mut prom);
        assert!(prom.contains("tlr_tasks_executed_total"), "{prom}");
    } else {
        assert!(snap.is_empty(), "no storage without the metrics feature");
    }
}

/// Acceptance: a drift report on a DES run prices the original task
/// graph with the scheduler's cost model and compares it to measured
/// per-class virtual time and measured comm. On a fault-free, unbatched
/// run the comm model is exact — both ratios are 1.0 — and every class
/// ratio is finite (never NaN).
#[test]
fn drift_report_compares_model_to_measured_comm_exactly() {
    let n = 120;
    let b = 24;
    let gen = |i: usize, j: usize| {
        let d = (i as f64 - j as f64) / (n as f64 / 8.0);
        let v: f64 = (-d * d).exp();
        if i == j {
            v + 1e-3
        } else {
            v
        }
    };
    let ccfg = CompressionConfig::with_accuracy(1e-8);
    let mut m = TlrMatrix::from_generator(n, b, gen, &ccfg);
    let mut fcfg = FactorConfig::with_accuracy(1e-8);
    // Panel batching fuses tasks and coalesces shipments, which changes
    // message counts; the exactness claim is for the unbatched graph.
    fcfg.batch_panels = false;
    let out = Session::distributed(fcfg, 4, &DiamondDistribution::new(4))
        .with_drift(DriftSpec::new(MachineModel::shaheen_ii()))
        .run(&mut m)
        .expect("SPD");
    let drift = out.drift.expect("drift spec + default metrics => report");

    assert!(drift.expected_rank > 0);
    assert!(drift.modeled_flops > 0.0, "pricing the DAG must see work");
    for c in &drift.classes {
        assert!(c.ratio.is_finite(), "{}: ratio {}", c.class, c.ratio);
        assert!(c.correction.is_finite() && c.correction > 0.0);
    }
    if Registry::compiled() {
        let gemm = drift.classes.iter().find(|c| c.class == "gemm").unwrap();
        assert!(gemm.measured_seconds > 0.0, "DES busy time lands in the registry");
        assert!(gemm.modeled_seconds > 0.0);
    }

    let comm = drift.comm.expect("distributed runs always model comm");
    assert_eq!(comm.bytes_ratio, 1.0, "fault-free unbatched comm model is exact");
    assert_eq!(comm.messages_ratio, 1.0);
    assert!(!comm.anomalous);

    // The report serializes to both export formats.
    let j = drift.to_json().to_string();
    assert!(j.contains("bytes_ratio") && j.contains("modeled_flops"), "{j}");
    let prom = drift.to_prometheus();
    assert!(prom.contains("tlr_drift_ratio"), "{prom}");
    let table = drift.to_string();
    assert!(table.contains("gemm"), "{table}");
}

/// The same drift machinery on the wall-clock engine: a shared-memory
/// run measures real seconds against the same modeled costs, so ratios
/// are finite (timing-dependent in value, never NaN) and the rank
/// profile comes from the run's own recompression histogram.
#[test]
fn drift_report_works_on_wall_clock_runs() {
    let n = 96;
    let b = 24;
    let gen = |i: usize, j: usize| {
        let d = (i as f64 - j as f64) / (n as f64 / 6.0);
        let v: f64 = (-d * d).exp();
        if i == j {
            v + 1e-3
        } else {
            v
        }
    };
    let ccfg = CompressionConfig::with_accuracy(1e-8);
    let mut m = TlrMatrix::from_generator(n, b, gen, &ccfg);
    let mut fcfg = FactorConfig::with_accuracy(1e-8);
    fcfg.nthreads = 2;
    let out = Session::shared(fcfg)
        .with_drift(DriftSpec::new(MachineModel::shaheen_ii()))
        .run(&mut m)
        .expect("SPD");
    let drift = out.drift.expect("drift spec + default metrics => report");
    assert!(drift.comm.is_none(), "shared-memory runs have no wire");
    assert!(drift.modeled_flops > 0.0);
    for c in &drift.classes {
        assert!(c.ratio.is_finite() && c.ratio >= 0.0, "{}: {}", c.class, c.ratio);
    }
    if Registry::compiled() {
        let total: f64 = drift.classes.iter().map(|c| c.measured_seconds).sum();
        assert!(total > 0.0, "wall-clock busy time must be measured");
    }
}

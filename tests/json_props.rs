//! Property-based round-trip coverage of the hand-rolled JSON layer
//! (`runtime::obs::json`): every metrics dump, Chrome trace, drift
//! report and bench-history row goes through this writer/parser pair,
//! so `parse(v.to_string()) == v` has to hold across escapes, unicode,
//! deep nesting and the awkward corners of f64 formatting.
//!
//! The offline proptest shim has integer-range strategies only, so the
//! structured values are grown from a seeded SplitMix64 stream — the
//! same recipe the observability tests use for traces.

use hicma_parsec::runtime::obs::json::Json;
use proptest::prelude::*;

/// SplitMix64 step: the shim's own generator, reused here so a failing
/// seed reproduces exactly.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Characters that stress the escaper: quotes, backslashes, control
/// characters, BMP and astral unicode, and plain ASCII.
const CHAR_POOL: &[char] = &[
    'a', 'Z', '7', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{8}', '\u{c}', '\u{1}', '\u{1f}',
    'é', 'ß', '中', '文', '→', '\u{2028}', '😀', '🚀', '\u{10FFFF}', '\u{0}',
];

fn seeded_string(state: &mut u64) -> String {
    let len = (next(state) % 12) as usize;
    (0..len).map(|_| CHAR_POOL[(next(state) as usize) % CHAR_POOL.len()]).collect()
}

/// Finite f64s biased toward the corners: exact integers at the 2^53
/// precision cliff, subnormals, huge magnitudes, negative zero, and
/// random bit patterns filtered to finite.
fn seeded_num(state: &mut u64) -> f64 {
    const EDGES: &[f64] = &[
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.1,
        -0.5,
        1e308,
        -1e308,
        f64::MAX,
        f64::MIN,
        5e-324,                  // smallest subnormal
        2.2250738585072014e-308, // smallest normal
        9007199254740992.0,      // 2^53
        9007199254740991.0,      // 2^53 - 1
        -9007199254740991.0,
        1.0 / 3.0,
        std::f64::consts::PI,
        1e-10,
        123_456_789.123_456_79,
    ];
    match next(state) % 3 {
        0 => EDGES[(next(state) as usize) % EDGES.len()],
        1 => (next(state) as i64 % 1_000_000) as f64,
        _ => {
            let v = f64::from_bits(next(state));
            if v.is_finite() {
                v
            } else {
                (next(state) % 1000) as f64 * 0.25
            }
        }
    }
}

/// A random Json tree of bounded depth/width.
fn seeded_json(state: &mut u64, depth: usize) -> Json {
    let pick = if depth == 0 { next(state) % 4 } else { next(state) % 6 };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(next(state).is_multiple_of(2)),
        2 => Json::Num(seeded_num(state)),
        3 => Json::Str(seeded_string(state)),
        4 => {
            let n = (next(state) % 4) as usize;
            Json::Arr((0..n).map(|_| seeded_json(state, depth - 1)).collect())
        }
        _ => {
            let n = (next(state) % 4) as usize;
            Json::Obj(
                (0..n).map(|_| (seeded_string(state), seeded_json(state, depth - 1))).collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Writer → parser is the identity on finite-valued trees. f64
    /// equality is exact: `Display` prints the shortest round-trip
    /// form, so even subnormals and 2^53-adjacent integers survive.
    #[test]
    fn structured_values_round_trip(seed in 0u64..1_000_000) {
        let mut state = seed;
        let v = seeded_json(&mut state, 4);
        let text = v.to_string();
        let back = Json::parse(&text);
        prop_assert!(back.is_ok(), "seed {} failed to parse {}: {:?}", seed, text, back.err());
        prop_assert_eq!(back.unwrap(), v, "seed {}", seed);
    }

    /// Strings alone, heavier on the escape pool.
    #[test]
    fn strings_round_trip(seed in 0u64..1_000_000) {
        let mut state = seed.wrapping_mul(3).wrapping_add(1);
        let mut s = String::new();
        for _ in 0..(next(&mut state) % 40) {
            s.push(CHAR_POOL[(next(&mut state) as usize) % CHAR_POOL.len()]);
        }
        let v = Json::Str(s);
        prop_assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    /// Numbers alone: shortest-round-trip printing must be lossless.
    #[test]
    fn numbers_round_trip(seed in 0u64..1_000_000) {
        let mut state = seed ^ 0xdead_beef;
        let x = seeded_num(&mut state);
        let v = Json::Num(x);
        let back = Json::parse(&v.to_string()).unwrap();
        match back {
            Json::Num(y) => prop_assert!(
                x == y || (x.is_nan() && y.is_nan()),
                "{} reparsed as {}", x, y
            ),
            other => prop_assert!(false, "number reparsed as {:?}", other),
        }
    }
}

#[test]
fn non_finite_numbers_serialize_as_null() {
    for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let text = Json::Num(x).to_string();
        assert_eq!(text, "null");
        assert_eq!(Json::parse(&text).unwrap(), Json::Null);
    }
}

#[test]
fn deep_nesting_round_trips() {
    // ~200 levels: the parser recurses, so this pins the practical
    // depth head-room for metrics dumps without risking stack overflow.
    let mut v = Json::Num(42.0);
    for i in 0..200 {
        v = if i % 2 == 0 {
            Json::Arr(vec![v])
        } else {
            Json::Obj(vec![("k".to_string(), v)])
        };
    }
    let text = v.to_string();
    assert_eq!(Json::parse(&text).unwrap(), v);
}

#[test]
fn unicode_escapes_parse_to_chars() {
    let v = Json::parse(r#""\u0041\u00e9\u4e2d\u001f""#).unwrap();
    assert_eq!(v, Json::Str("Aé中\u{1f}".to_string()));
    // Lone surrogates cannot form a char; the parser substitutes
    // U+FFFD instead of erroring, keeping dumps loadable.
    let v = Json::parse(r#""\ud83d""#).unwrap();
    assert_eq!(v, Json::Str("\u{fffd}".to_string()));
}

#[test]
fn control_characters_escape_and_reparse() {
    let s: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
    let v = Json::Str(s);
    let text = v.to_string();
    assert!(text.contains("\\u0000") || text.contains("\\n"), "{text}");
    assert_eq!(Json::parse(&text).unwrap(), v);
}

#[test]
fn whitespace_and_structure_tolerance() {
    let v = Json::parse(" {\n\t\"a\" : [ 1 , 2.5 ,\r null , true ] , \"b\" : { } } ").unwrap();
    assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()), Some(4));
    assert_eq!(v.get("b"), Some(&Json::Obj(Vec::new())));
}

#[test]
fn malformed_inputs_error_instead_of_panicking() {
    for bad in [
        "", "{", "[", "\"", "{\"a\":}", "[1,]", "{\"a\" 1}", "tru", "nul", "1e999e",
        "\"\\x\"", "\"\\u12\"", "[1 2]", "{}extra",
    ] {
        assert!(Json::parse(bad).is_err(), "`{bad}` must be rejected");
    }
}

//! Steady-state allocation contract of the workspace kernel engine.
//!
//! The recompression hot path (`gemm_kernel` on low-rank operands)
//! promises zero heap traffic once the per-worker arena has grown to its
//! high-water mark. This test wires a counting `#[global_allocator]`
//! into the *test harness* (the library itself stays allocator-agnostic),
//! warms an explicit workspace up, and then asserts the next call
//! performs no allocation at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hicma_parsec::linalg::Matrix;
use hicma_parsec::tlr::kernels::{gemm_kernel_ws, KernelWorkspace};
use hicma_parsec::tlr::{CompressionConfig, Tile};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Deterministic low-rank factor: decaying mixes of smooth cosine modes,
/// families chosen so the update does not inflate the destination rank.
fn mixed_factor(rows: usize, k: usize, phase: f64, decay: f64, seed: usize) -> Matrix {
    Matrix::from_fn(rows, k, |i, j| {
        let mut acc = 0.0;
        for l in 0..k {
            let m = ((l * 31 + j * 17 + seed * 13 + 7) % 101) as f64 / 101.0 - 0.5;
            let f = ((l + 1) as f64 * std::f64::consts::PI * (i as f64 + 0.5) / rows as f64
                + phase)
                .cos();
            acc += m * decay.powi(l as i32) * f;
        }
        acc
    })
}

#[test]
fn gemm_kernel_steady_state_allocates_nothing() {
    let b = 64usize;
    let rank = 8usize;
    let config = CompressionConfig::with_accuracy(1e-8);
    let a = Tile::LowRank {
        u: mixed_factor(b, rank, 0.0, 0.5, 1),
        v: mixed_factor(b, rank, 1.0, 0.7, 2),
    };
    let bt = Tile::LowRank {
        u: mixed_factor(b, rank, 2.0, 0.5, 3),
        v: mixed_factor(b, rank, 1.0, 0.7, 4),
    };
    let c0 = Tile::LowRank {
        u: mixed_factor(b, rank, 0.0, 0.6, 5),
        v: mixed_factor(b, rank, 2.0, 0.6, 6),
    };

    let mut ws = KernelWorkspace::new();
    // Warm-up: grow the arena to its high-water mark.
    let mut counts = Vec::new();
    for _ in 0..8 {
        let mut c = c0.clone();
        let before = ALLOCS.load(Ordering::Relaxed);
        gemm_kernel_ws(&mut ws, &a, &bt, &mut c, &config);
        counts.push(ALLOCS.load(Ordering::Relaxed) - before);
        assert_eq!(c.format(), hicma_parsec::tlr::tile::TileFormat::LowRank);
    }

    // Steady state: one more call on a warmed arena must not touch the
    // heap at all.
    let mut c = c0.clone();
    let before = ALLOCS.load(Ordering::Relaxed);
    gemm_kernel_ws(&mut ws, &a, &bt, &mut c, &config);
    let steady = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        steady, 0,
        "gemm_kernel allocated {steady} time(s) in steady state (warm-up counts: {counts:?})"
    );
}

//! Capability-composition tests for the unified engines: every subset of
//! {cancellation, observation, comm counting, fault layer} must produce a
//! bit-identical factor on the same seeded RBF-structured problem, with
//! communication accounting that stays consistent between the engine's
//! `CommStats` and the fault layer's `FaultStats`. This is the contract
//! that let the legacy `execute_*`/`factorize_distributed_*` entry-point
//! matrix collapse into one `Session` over one engine per kind.

use hicma_parsec::cholesky::{factorize, FactorConfig, RunError, Session};
use hicma_parsec::distribution::{DiamondDistribution, TwoDBlockCyclic};
use hicma_parsec::linalg::norms::relative_diff;
use hicma_parsec::linalg::Matrix;
use hicma_parsec::runtime::{FaultPlan, FtConfig, SchedPolicy};
use hicma_parsec::tlr::{CompressionConfig, TlrMatrix};
use proptest::prelude::*;

/// Seeded RBF-structured SPD generator (Gaussian kernel on a 1D grid
/// with a seed-dependent phase, plus a diagonal bump).
fn rbf_gen(n: usize, corr: f64, seed: u64) -> impl Fn(usize, usize) -> f64 + Sync {
    let phase = (seed % 97) as f64 / 97.0;
    move |i: usize, j: usize| {
        let d = (i as f64 - j as f64) / (n as f64 / corr);
        let v = (-d * d).exp() * (1.0 + 0.05 * ((i + j) as f64 * 0.01 + phase).sin());
        if i == j {
            v + 1e-3
        } else {
            v
        }
    }
}

fn compressed(dense: &Matrix, b: usize, acc: f64) -> TlrMatrix {
    TlrMatrix::from_dense(dense, b, &CompressionConfig::with_accuracy(acc))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every capability subset — shared vs distributed, traced vs not,
    /// fault layer absent / fault-free / lossy / lossy-with-crash —
    /// produces the identical factor, and the comm accounting composes
    /// consistently (fault-free comm equals the no-layer run; faults
    /// only ever add messages and bytes; `CommStats` agrees with
    /// `FaultStats`).
    #[test]
    fn all_capability_subsets_agree(
        seed in 0u64..10_000,
        corr in 4u32..10,
        drop_pct in 0u32..20,
        dup_pct in 0u32..15,
        crash_flag in 0u32..2,
    ) {
        let crash = crash_flag == 1;
        let n = 96;
        let b = 24;
        let acc = 1e-8;
        let dense = Matrix::from_fn(n, n, rbf_gen(n, corr as f64, seed));

        // {} — plain shared-memory run: the baseline factor.
        let mut base = compressed(&dense, b, acc);
        let fcfg = FactorConfig::with_accuracy(acc);
        factorize(&mut base, &fcfg).unwrap();
        let l_base = base.to_dense_lower();

        // {obs} — tracing layered onto the shared engine must not
        // perturb the numbers (no-op hooks compile away without the
        // feature; with it, span capture stays off the kernel path).
        let mut traced = compressed(&dense, b, acc);
        let mut tcfg = fcfg;
        tcfg.collect_trace = true;
        factorize(&mut traced, &tcfg).unwrap();
        prop_assert_eq!(
            relative_diff(&traced.to_dense_lower(), &l_base), 0.0,
            "observation changed the factor"
        );

        // {counted} — distributed run (comm counting is inherent).
        let dist = TwoDBlockCyclic::new(4);
        let mut counted = compressed(&dense, b, acc);
        let out = Session::distributed(fcfg, 4, &dist).run(&mut counted).unwrap();
        let comm_base = out.comm.unwrap();
        prop_assert_eq!(
            relative_diff(&counted.to_dense_lower(), &l_base), 0.0,
            "distributed factor deviates from shared memory"
        );
        prop_assert!(comm_base.messages > 0, "4 ranks must communicate");

        // {counted, ft(fault-free)} — an explicit fault-free fault layer
        // is the same event loop with the same config: identical factor
        // *and* identical comm volume.
        let ff = FtConfig::fault_free();
        let mut ftff = compressed(&dense, b, acc);
        let out_ff = Session::distributed(fcfg, 4, &dist)
            .with_fault_layer(&ff)
            .run(&mut ftff)
            .unwrap();
        prop_assert_eq!(relative_diff(&ftff.to_dense_lower(), &l_base), 0.0);
        let comm_ff = out_ff.comm.unwrap();
        prop_assert_eq!(comm_ff.messages, comm_base.messages);
        prop_assert_eq!(comm_ff.bytes, comm_base.bytes);
        let ft_ff = out_ff.ft.expect("fault layer configured");
        prop_assert_eq!(ft_ff.stats.retransmissions, 0);

        // {counted, ft(lossy[, crash]), obs} — everything at once. The
        // factor still matches bit for bit, comm only grows, and the
        // engine's CommStats is exactly the fault layer's sends plus
        // retransmissions.
        let mut plan = FaultPlan::new(seed)
            .with_drops(drop_pct as f64 / 100.0)
            .with_duplicates(dup_pct as f64 / 100.0)
            .with_jitter(0.5);
        if crash {
            plan = plan.with_crash(1, 12.0);
        }
        let ft = FtConfig::with_plan(plan);
        let mut full = compressed(&dense, b, acc);
        let out_full = Session::distributed(tcfg, 4, &dist)
            .with_fault_layer(&ft)
            .run(&mut full)
            .unwrap();
        prop_assert_eq!(
            relative_diff(&full.to_dense_lower(), &l_base), 0.0,
            "faults leaked into the factor"
        );
        let comm_full = out_full.comm.unwrap();
        let stats = &out_full.ft.as_ref().expect("fault layer configured").stats;
        if !crash {
            // Without a crash the placement is unchanged, so faults can
            // only ever *add* traffic (retransmissions). A crash migrates
            // tasks, which may legitimately localize former cross-rank
            // edges, so no inequality holds there.
            prop_assert!(comm_full.messages >= comm_base.messages, "faults cannot shrink traffic");
            prop_assert!(comm_full.bytes >= comm_base.bytes);
        }
        prop_assert_eq!(
            comm_full.messages,
            (stats.messages_sent + stats.retransmissions) as u64,
            "CommStats and FaultStats must agree on sends"
        );
        if crash {
            prop_assert_eq!(stats.crashes, 1, "the scheduled crash must fire");
        }
    }

    /// The scheduling policy is an ordering knob, never a numeric one:
    /// every [`SchedPolicy`] — static keys, HEFT-style upward ranks, the
    /// comm-aware variant, and the self-correcting rank-aware lookahead —
    /// must produce the panel-priority factor bit for bit, through both
    /// the shared work-stealing engine and the distributed engine.
    #[test]
    fn every_sched_policy_is_bit_identical(
        seed in 0u64..10_000,
        corr in 4u32..10,
    ) {
        let n = 96;
        let b = 24;
        let acc = 1e-8;
        let dense = Matrix::from_fn(n, n, rbf_gen(n, corr as f64, seed));

        let mut base = compressed(&dense, b, acc);
        let fcfg = FactorConfig::with_accuracy(acc);
        factorize(&mut base, &fcfg).unwrap();
        let l_base = base.to_dense_lower();

        let dist = TwoDBlockCyclic::new(4);
        for policy in SchedPolicy::ALL {
            let mut pcfg = fcfg;
            pcfg.sched = policy;

            let mut shared = compressed(&dense, b, acc);
            factorize(&mut shared, &pcfg).unwrap();
            prop_assert_eq!(
                relative_diff(&shared.to_dense_lower(), &l_base), 0.0,
                "shared-memory factor changed under policy {}", policy.name()
            );

            let mut distributed = compressed(&dense, b, acc);
            Session::distributed(pcfg, 4, &dist).run(&mut distributed).unwrap();
            prop_assert_eq!(
                relative_diff(&distributed.to_dense_lower(), &l_base), 0.0,
                "distributed factor changed under policy {}", policy.name()
            );
        }
    }
}

/// Cancellation composes identically everywhere: the same indefinite
/// operator reports a pivot failure (not a hang, not a panic) through the
/// shared engine, the distributed engine, and the fault layer — and the
/// reported pivot is deterministic across all three.
#[test]
fn pivot_cancellation_is_uniform_across_engines() {
    let n = 96;
    let dense = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            if i == 50 {
                -4.0
            } else {
                2.0
            }
        } else {
            0.01 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    let mut cfg = FactorConfig::with_accuracy(1e-8);
    cfg.max_shift_retries = 0; // fail fast: we compare the raw pivot

    let shared_pivot = {
        let mut m = compressed(&dense, 24, 1e-8);
        factorize(&mut m, &cfg).unwrap_err().pivot
    };

    let dist = TwoDBlockCyclic::new(4);
    let dist_pivot = {
        let mut m = compressed(&dense, 24, 1e-8);
        match Session::distributed(cfg, 4, &dist).run(&mut m).unwrap_err() {
            RunError::Numeric(e) => e.pivot,
            other => panic!("expected a numeric error, got {other}"),
        }
    };

    let ft = FtConfig::fault_free();
    let ft_pivot = {
        let mut m = compressed(&dense, 24, 1e-8);
        match Session::distributed(cfg, 4, &dist).with_fault_layer(&ft).run(&mut m).unwrap_err() {
            RunError::Numeric(e) => e.pivot,
            other => panic!("expected a numeric error, got {other}"),
        }
    };

    assert_eq!(shared_pivot, dist_pivot, "shared and distributed must report the same pivot");
    assert_eq!(dist_pivot, ft_pivot, "the fault layer must not change the reported pivot");
}

/// The headline composition the legacy entry points could not express:
/// one run that is fault-tolerant, comm-counted, *and* traced. Crash
/// events pair up, comm accounting is consistent, and (in `obs` builds)
/// the virtual-time trace covers every task.
#[test]
fn ft_plus_trace_plus_comm_in_one_run() {
    let n = 120;
    let b = 24;
    let acc = 1e-8;
    let dense = Matrix::from_fn(n, n, rbf_gen(n, 8.0, 7));

    let mut shared = compressed(&dense, b, acc);
    let fcfg = FactorConfig::with_accuracy(acc);
    factorize(&mut shared, &fcfg).unwrap();

    let plan = FaultPlan::new(9).with_drops(0.1).with_jitter(0.5).with_crash(1, 10.0);
    let ft = FtConfig::with_plan(plan);
    let mut m = compressed(&dense, b, acc);
    let mut tcfg = fcfg;
    tcfg.collect_trace = true;
    let out = Session::distributed(tcfg, 6, &DiamondDistribution::new(6))
        .with_fault_layer(&ft)
        .run(&mut m)
        .expect("one crash among six ranks is survivable");

    // Factor: bit-identical to shared memory despite the faults.
    assert_eq!(relative_diff(&m.to_dense_lower(), &shared.to_dense_lower()), 0.0);

    // Comm: counted, and consistent with the fault accounting.
    let comm = out.comm.expect("distributed runs count communication");
    let ftout = out.ft.expect("fault layer was configured");
    assert_eq!(comm.messages, (ftout.stats.messages_sent + ftout.stats.retransmissions) as u64);
    assert_eq!(comm.bytes, ftout.stats.bytes_sent);
    assert_eq!(ftout.stats.crashes, 1);
    assert_eq!(ftout.events.len(), 2, "one crash ⇒ one Crash + one Recovery event");

    // Trace: present in obs builds, absent otherwise (collect_trace is
    // feature-gated uniformly across engines), covering every task plus
    // the crash re-executions, inside the virtual makespan.
    if cfg!(feature = "obs") {
        let trace = out.trace.expect("obs build with collect_trace must record a trace");
        assert!(
            trace.records.len() >= out.report.dag_tasks,
            "every task (plus re-executions) must be traced: {} < {}",
            trace.records.len(),
            out.report.dag_tasks
        );
        assert!(trace.makespan() <= ftout.makespan + 1e-12);
    } else {
        assert!(out.trace.is_none(), "tracing is compiled out without the obs feature");
    }
}

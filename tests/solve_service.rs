//! Multi-tenant [`SolveService`] contract: concurrent requests through
//! one service produce bit-identical factors and correct solves, per-
//! tenant admission (in-flight cap, arena-byte budget) is enforced with
//! typed rejections before any kernel runs, the measured workspace
//! high-water mark never exceeds the charged estimate, and accounting
//! returns to zero when the dust settles.

use hicma_parsec::cholesky::{
    factorize, solve_residual, FactorConfig, ServiceError, SolveService, TenantConfig,
};
use hicma_parsec::linalg::norms::relative_diff;
use hicma_parsec::linalg::Matrix;
use hicma_parsec::tlr::{CompressionConfig, TlrMatrix};

const N: usize = 96;
const B: usize = 24;
const ACC: f64 = 1e-8;

fn test_matrix() -> Matrix {
    Matrix::from_fn(N, N, |i, j| {
        let d = (i as f64 - j as f64) / (N as f64 / 6.0);
        let v = (-d * d).exp() * (1.0 + 0.05 * ((i + j) as f64 * 0.01).sin());
        if i == j {
            v + 1e-3
        } else {
            v
        }
    })
}

fn compressed(dense: &Matrix) -> TlrMatrix {
    TlrMatrix::from_dense(dense, B, &CompressionConfig::with_accuracy(ACC))
}

fn counter(snap: &hicma_parsec::runtime::obs::registry::RegistrySnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Eight threads hammer one service (one tenant, generous budget): every
/// factor is bit-identical to a fresh reference, every solve checks out
/// against the dense operator, the symbolic phase ran exactly once
/// (pre-warm miss, then hits), and all accounting drains back to zero.
#[test]
fn concurrent_requests_share_one_plan_and_stay_within_budget() {
    let dense = test_matrix();
    let cfg = FactorConfig::with_accuracy(ACC);

    let mut reference = compressed(&dense);
    factorize(&mut reference, &cfg).unwrap();
    let l_ref = reference.to_dense_lower();

    let service = SolveService::new(4);
    let charged = SolveService::arena_estimate_bytes(cfg.nthreads, B);
    let budget = charged * 16; // roomy: admission should never trip here
    service.register_tenant(
        "acme",
        TenantConfig {
            max_in_flight: 16,
            memory_budget_bytes: budget,
        },
    );

    // Pre-warm sequentially so the hit/miss split is deterministic (a
    // concurrent cold start may legitimately build the plan more than
    // once — get_or_build constructs outside the lock).
    let mut warmup = compressed(&dense);
    let out = service
        .factorize_and_solve("acme", &cfg, &mut warmup, None)
        .unwrap();
    assert!(
        out.measured_bytes <= out.charged_bytes,
        "measured arena high-water {} exceeds the charged estimate {}",
        out.measured_bytes,
        out.charged_bytes
    );
    assert_eq!(service.plan_cache().misses(), 1);

    let threads = 8;
    let rhs: Vec<f64> = (0..N).map(|i| 1.0 + (i as f64 * 0.1).cos()).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            handles.push(s.spawn(|| {
                let mut m = compressed(&dense);
                let out = service
                    .factorize_and_solve("acme", &cfg, &mut m, Some(&rhs))
                    .unwrap();
                (m.to_dense_lower(), out)
            }));
        }
        for h in handles {
            let (l, out) = h.join().unwrap();
            assert_eq!(
                relative_diff(&l, &l_ref),
                0.0,
                "concurrent factor deviated from the fresh reference"
            );
            let x = out.solution.as_ref().expect("rhs was supplied");
            assert!(
                solve_residual(&dense, x, &rhs) < 1e-6,
                "solution residual too large"
            );
            assert!(out.measured_bytes <= out.charged_bytes);
        }
    });

    // One symbolic build total; everything after the warm-up hit.
    assert_eq!(service.plan_cache().misses(), 1);
    assert_eq!(service.plan_cache().hits(), threads as u64);

    let usage = service.usage("acme").unwrap();
    assert_eq!(usage.in_flight, 0, "all requests released");
    assert_eq!(usage.in_use_bytes, 0, "all charges released");
    assert_eq!(usage.admitted, threads as u64 + 1);
    assert_eq!(usage.rejected, 0);
    assert!(
        usage.peak_arena_bytes <= budget,
        "tenant peak {} exceeded its budget {}",
        usage.peak_arena_bytes,
        budget
    );

    let snap = service.registry_snapshot();
    if !snap.is_empty() {
        assert_eq!(counter(&snap, "service_requests_admitted"), threads as u64 + 1);
        assert_eq!(counter(&snap, "service_requests_rejected"), 0);
        assert_eq!(counter(&snap, "plan_cache_misses"), 1);
        assert_eq!(counter(&snap, "plan_cache_hits"), threads as u64);
    }
}

/// Every rejection path returns its typed error, before any kernel runs,
/// and both the tenant ledger and the service registry count it.
#[test]
fn rejections_are_typed_and_counted() {
    let dense = test_matrix();
    let cfg = FactorConfig::with_accuracy(ACC);
    let service = SolveService::new(2);

    // Unknown tenant.
    let mut m = compressed(&dense);
    match service.factorize("nobody", &cfg, &mut m) {
        Err(ServiceError::UnknownTenant(t)) => assert_eq!(t, "nobody"),
        other => panic!("expected UnknownTenant, got {other:?}"),
    }

    // Drained tenant: zero in-flight slots.
    service.register_tenant(
        "drained",
        TenantConfig {
            max_in_flight: 0,
            memory_budget_bytes: u64::MAX,
        },
    );
    match service.factorize("drained", &cfg, &mut m) {
        Err(ServiceError::InFlightLimit { tenant, limit }) => {
            assert_eq!(tenant, "drained");
            assert_eq!(limit, 0);
        }
        other => panic!("expected InFlightLimit, got {other:?}"),
    }

    // Broke tenant: zero-byte budget cannot fit any request.
    service.register_tenant(
        "broke",
        TenantConfig {
            max_in_flight: 4,
            memory_budget_bytes: 0,
        },
    );
    let charged = SolveService::arena_estimate_bytes(cfg.nthreads, B);
    match service.factorize("broke", &cfg, &mut m) {
        Err(ServiceError::MemoryBudget {
            tenant,
            requested,
            budget,
            in_use,
        }) => {
            assert_eq!(tenant, "broke");
            assert_eq!(requested, charged);
            assert_eq!(budget, 0);
            assert_eq!(in_use, 0);
        }
        other => panic!("expected MemoryBudget, got {other:?}"),
    }

    // Nothing ran: the matrix is still unfactored (factoring mutates
    // tiles in place; a pristine compress round-trips the source).
    assert!(relative_diff(&m.to_dense(), &dense) < 1e-6);

    for t in ["drained", "broke"] {
        let u = service.usage(t).unwrap();
        assert_eq!(u.admitted, 0);
        assert_eq!(u.rejected, 1);
        assert_eq!(u.in_flight, 0);
        assert_eq!(u.in_use_bytes, 0);
    }
    let snap = service.registry_snapshot();
    if !snap.is_empty() {
        assert_eq!(counter(&snap, "service_requests_admitted"), 0);
        assert_eq!(counter(&snap, "service_requests_rejected"), 3);
    }

    // Reconfiguring lifts the limit without resetting the ledger.
    service.register_tenant(
        "broke",
        TenantConfig {
            max_in_flight: 4,
            memory_budget_bytes: charged,
        },
    );
    service.factorize("broke", &cfg, &mut m).unwrap();
    let u = service.usage("broke").unwrap();
    assert_eq!(u.admitted, 1);
    assert_eq!(u.rejected, 1);
}

/// A budget sized for exactly two in-flight requests: under a 6-thread
/// burst the tenant's charged bytes never exceed the budget (checked by
/// a concurrent watcher), overflow requests get `MemoryBudget`, and
/// admitted ones still factor bit-identically.
#[test]
fn budget_caps_concurrent_charges() {
    let dense = test_matrix();
    let cfg = FactorConfig::with_accuracy(ACC);

    let mut reference = compressed(&dense);
    factorize(&mut reference, &cfg).unwrap();
    let l_ref = reference.to_dense_lower();

    let service = SolveService::new(2);
    let charged = SolveService::arena_estimate_bytes(cfg.nthreads, B);
    let budget = charged * 2;
    service.register_tenant(
        "tight",
        TenantConfig {
            max_in_flight: 16,
            memory_budget_bytes: budget,
        },
    );

    let threads = 6;
    let done = std::sync::atomic::AtomicBool::new(false);
    let (mut ok, mut over_budget) = (0u64, 0u64);
    std::thread::scope(|s| {
        let watcher = s.spawn(|| {
            // The budget invariant must hold at every observable instant.
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                let u = service.usage("tight").unwrap();
                assert!(
                    u.in_use_bytes <= budget,
                    "charged {} exceeds budget {}",
                    u.in_use_bytes,
                    budget
                );
                std::thread::yield_now();
            }
        });
        let mut handles = Vec::new();
        for _ in 0..threads {
            handles.push(s.spawn(|| {
                let mut m = compressed(&dense);
                service.factorize("tight", &cfg, &mut m).map(|r| (m, r))
            }));
        }
        for h in handles {
            match h.join().unwrap() {
                Ok((m, _)) => {
                    assert_eq!(relative_diff(&m.to_dense_lower(), &l_ref), 0.0);
                    ok += 1;
                }
                Err(ServiceError::MemoryBudget { budget: b, .. }) => {
                    assert_eq!(b, budget);
                    over_budget += 1;
                }
                Err(other) => panic!("unexpected rejection: {other}"),
            }
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        watcher.join().unwrap();
    });

    assert_eq!(ok + over_budget, threads as u64);
    assert!(ok >= 1, "at least one request must fit the budget");
    let u = service.usage("tight").unwrap();
    assert_eq!(u.in_flight, 0);
    assert_eq!(u.in_use_bytes, 0);
    assert_eq!(u.admitted, ok);
    assert_eq!(u.rejected, over_budget);
}

//! Cross-validation: the symbolic PTG description of dense tile Cholesky
//! must unroll to a graph equivalent to the hand-rolled builder in
//! `hicma-core` (same task counts per class, same dependency structure,
//! same critical path).

use hicma_parsec::cholesky::dag::{build_cholesky_dag, DagConfig};
use hicma_parsec::runtime::critical_path::critical_path;
use hicma_parsec::runtime::graph::TaskClass;
use hicma_parsec::runtime::ptg::dense_cholesky_ptg;
use hicma_parsec::tlr::RankSnapshot;

fn dense_snapshot(nt: usize, b: usize) -> RankSnapshot {
    let mut ranks = vec![0usize; nt * nt];
    for i in 0..nt {
        for j in 0..=i {
            ranks[i * nt + j] = b; // every tile dense
        }
    }
    RankSnapshot::new(nt, b, ranks)
}

#[test]
fn ptg_and_builder_agree_on_task_counts() {
    let nt = 7;
    let b = 64;
    let ptg = dense_cholesky_ptg(nt, b).unroll().unwrap();
    let dag = build_cholesky_dag(&dense_snapshot(nt, b), &DagConfig::default());
    assert_eq!(ptg.graph.len(), dag.graph.len());
    let ptg_counts = ptg.graph.class_counts();
    let dag_counts = dag.graph.class_counts();
    for (a, b) in ptg_counts.iter().zip(dag_counts.iter()) {
        assert_eq!(a.1, b.1, "class {:?}", a.0);
    }
}

#[test]
fn ptg_and_builder_agree_on_critical_path_length() {
    // With unit durations per class, the longest chains must match.
    let nt = 6;
    let b = 32;
    let dur = |class: TaskClass| -> f64 {
        match class {
            TaskClass::Potrf => 3.0,
            TaskClass::Trsm => 2.0,
            TaskClass::Syrk => 2.0,
            TaskClass::Gemm => 1.0,
            TaskClass::Other => 0.0,
        }
    };
    let ptg = dense_cholesky_ptg(nt, b).unroll().unwrap();
    let dag = build_cholesky_dag(&dense_snapshot(nt, b), &DagConfig::default());
    let cp_ptg = critical_path(&ptg.graph, |t| dur(ptg.graph.spec(t).class));
    let cp_dag = critical_path(&dag.graph, |t| dur(dag.graph.spec(t).class));
    assert!(
        (cp_ptg.length - cp_dag.length).abs() < 1e-12,
        "PTG CP {} vs builder CP {}",
        cp_ptg.length,
        cp_dag.length
    );
}

#[test]
fn ptg_edge_count_matches_builder() {
    // The PTG expresses the same dataflow; edge counts must agree for the
    // dense case (the builder adds exactly one edge per read + one per
    // tile-version chain, which is what the JDF rules encode).
    let nt = 5;
    let b = 16;
    let ptg = dense_cholesky_ptg(nt, b).unroll().unwrap();
    let dag = build_cholesky_dag(&dense_snapshot(nt, b), &DagConfig::default());
    assert_eq!(ptg.graph.num_edges(), dag.graph.num_edges());
}

//! `hicma-parsec` — command-line front-end to the TLR Cholesky stack.
//!
//! Subcommands:
//!
//! * `factorize` — build a synthetic-virus RBF operator, compress,
//!   factorize (real numerics) and verify;
//! * `simulate`  — price a paper-scale run on the simulated machine;
//! * `analyze`   — run Algorithm 1 on a synthetic rank profile and print
//!   trimming statistics;
//! * `tune`      — auto-tune the tile size for a given problem size.
//!
//! Arguments are `key=value` pairs; run with no arguments for usage.

use hicma_parsec::cholesky::lorapo::{hicma_parsec_config, lorapo_config};
use hicma_parsec::cholesky::simulate::simulate_cholesky;
use hicma_parsec::cholesky::{factorize, tune_tile_size, FactorConfig, MatrixAnalysis};
use hicma_parsec::linalg::Matrix;
use hicma_parsec::mesh::geometry::{virus_population, VirusConfig};
use hicma_parsec::mesh::hilbert::{apply_permutation, hilbert_sort};
use hicma_parsec::mesh::GaussianRbf;
use hicma_parsec::runtime::MachineModel;
use hicma_parsec::tlr::{CompressionConfig, SyntheticRankModel, TlrMatrix};
use std::collections::HashMap;

fn usage() -> ! {
    eprintln!(
        "usage: hicma-parsec <command> [key=value ...]

commands:
  factorize  viruses=4 points=400 tile=128 accuracy=1e-6 [untrimmed=1]
             build + compress + factorize a synthetic RBF operator (real numerics)
  simulate   n=11.95e6 tile=4880 nodes=512 shape=3.7e-4 accuracy=1e-4
             machine=shaheen|fugaku code=hicma|lorapo scale=32
             price a paper-scale factorization on the simulated cluster
  analyze    nt=256 tile=1024 shape=3.7e-4 accuracy=1e-4
             run Algorithm 1 and print trimming statistics
  snapshot   viruses=4 points=400 tile=128 accuracy=1e-4 out=snap.txt
             measure a real compression and save its rank snapshot
             (feed back into `simulate snapshot=snap.txt`)
  tune       n=1e6 shape=3.7e-4 accuracy=1e-4 nodes=16 machine=shaheen
             auto-tune the tile size with the simulator"
    );
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    for a in args {
        match a.split_once('=') {
            Some((k, v)) => {
                map.insert(k.to_string(), v.to_string());
            }
            None => {
                eprintln!("malformed argument `{a}` (expected key=value)");
                usage();
            }
        }
    }
    map
}

fn get_f64(m: &HashMap<String, String>, k: &str, default: f64) -> f64 {
    m.get(k).map_or(default, |v| v.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {k}: {v}");
        usage()
    }))
}

fn get_usize(m: &HashMap<String, String>, k: &str, default: usize) -> usize {
    get_f64(m, k, default as f64) as usize
}

fn machine_of(m: &HashMap<String, String>) -> MachineModel {
    match m.get("machine").map(String::as_str) {
        None | Some("shaheen") => MachineModel::shaheen_ii(),
        Some("fugaku") => MachineModel::fugaku(),
        Some(other) => {
            eprintln!("unknown machine `{other}` (shaheen|fugaku)");
            usage()
        }
    }
}

fn cmd_factorize(m: HashMap<String, String>) {
    let viruses = get_usize(&m, "viruses", 4);
    let points_per = get_usize(&m, "points", 400);
    let tile = get_usize(&m, "tile", 128);
    let accuracy = get_f64(&m, "accuracy", 1e-6);
    let trimmed = !m.contains_key("untrimmed");

    let vcfg = VirusConfig { points_per_virus: points_per, ..Default::default() };
    let raw = virus_population(viruses, &vcfg, 2024);
    let points = apply_permutation(&raw, &hilbert_sort(&raw));
    let n = points.len();
    let kernel = GaussianRbf::from_min_distance(&points);
    println!("N = {n}, δ = {:.3e}, tile = {tile}, accuracy = {accuracy:.0e}", kernel.delta);

    let ccfg = CompressionConfig::with_accuracy(accuracy);
    let t0 = std::time::Instant::now();
    let mut a = TlrMatrix::from_generator(n, tile, kernel.generator(&points), &ccfg);
    println!(
        "compressed in {:.3}s: density {:.3}, memory {:.1}% of dense",
        t0.elapsed().as_secs_f64(),
        a.density(),
        100.0 * a.memory_f64() as f64 / (n * (n + 1) / 2) as f64
    );
    let fcfg = FactorConfig {
        trimmed,
        nthreads: std::thread::available_parallelism().map_or(4, |p| p.get()),
        ..FactorConfig::with_accuracy(accuracy)
    };
    match factorize(&mut a, &fcfg) {
        Ok(rep) => {
            println!(
                "factorized in {:.3}s: {} tasks ({} dense-DAG), breakdown P {:.3} T {:.3} S {:.3} G {:.3}",
                rep.factorization_seconds,
                rep.dag_tasks,
                rep.dense_dag_tasks,
                rep.breakdown.potrf,
                rep.breakdown.trsm,
                rep.breakdown.syrk,
                rep.breakdown.gemm
            );
            if n <= 4000 {
                let dense = Matrix::from_fn(n, n, |i, j| kernel.matrix_entry(&points, i, j));
                let res = hicma_parsec::cholesky::factorization_residual(&dense, &a);
                println!("‖A − LLᵀ‖/‖A‖ = {res:.3e}");
            }
        }
        Err(e) => {
            eprintln!("matrix is not positive definite at this accuracy (pivot {})", e.pivot);
            std::process::exit(1);
        }
    }
}

fn cmd_simulate(m: HashMap<String, String>) {
    let n = get_f64(&m, "n", 11.95e6);
    let tile = get_usize(&m, "tile", 4880);
    let nodes = get_usize(&m, "nodes", 512);
    let shape = get_f64(&m, "shape", 3.7e-4);
    let accuracy = get_f64(&m, "accuracy", 1e-4);
    let scale = get_usize(&m, "scale", 32);
    let machine = machine_of(&m);

    let p = hicma_parsec::cholesky::simulate::scaled_problem(n, tile, nodes, scale);
    // Scale the fixed time constants with the problem (see EXPERIMENTS.md).
    let mut machine = machine;
    machine.task_overhead_s /= scale as f64;
    machine.dep_overhead_s /= scale as f64;
    machine.latency_s /= scale as f64;
    let snap = match m.get("snapshot") {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read snapshot {path}: {e}");
                std::process::exit(1);
            });
            hicma_parsec::tlr::RankSnapshot::from_text(&text).unwrap_or_else(|e| {
                eprintln!("bad snapshot {path}: {e}");
                std::process::exit(1);
            })
        }
        None => {
            SyntheticRankModel::from_application(p.nt, p.tile_size, shape, accuracy).snapshot()
        }
    };
    let cfg = match m.get("code").map(String::as_str) {
        None | Some("hicma") => hicma_parsec_config(machine, p.nodes),
        Some("lorapo") => lorapo_config(machine, p.nodes),
        Some(other) => {
            eprintln!("unknown code `{other}` (hicma|lorapo)");
            usage()
        }
    };
    if m.contains_key("snapshot") {
        println!(
            "simulating measured snapshot (NT={} b={}) on {} procs",
            snap.nt(),
            snap.tile_size(),
            p.nodes
        );
    } else {
        println!(
            "simulating N={n:.3e} tile={tile} nodes={nodes} (scaled 1/{scale}: NT={} b={} procs={})",
            p.nt, p.tile_size, p.nodes
        );
    }
    let r = simulate_cholesky(&snap, &cfg);
    println!(
        "time {:.3}s | CP {:.3}s (eff {:.0}%) | {} tasks | imbalance {:.2} | {:.2} GB moved",
        r.factorization_seconds,
        r.critical_path_seconds,
        100.0 * r.roofline_efficiency(),
        r.dag_tasks,
        r.load_imbalance,
        r.comm.bytes as f64 / 1e9
    );
}

fn cmd_analyze(m: HashMap<String, String>) {
    let nt = get_usize(&m, "nt", 256);
    let tile = get_usize(&m, "tile", 1024);
    let shape = get_f64(&m, "shape", 3.7e-4);
    let accuracy = get_f64(&m, "accuracy", 1e-4);
    let snap = SyntheticRankModel::from_application(nt, tile, shape, accuracy).snapshot();
    let t0 = std::time::Instant::now();
    let a = MatrixAnalysis::analyze(&snap, tile);
    println!(
        "NT = {nt}: initial density {:.3}, final density {:.3}, fill-in tiles {}",
        snap.density(),
        a.final_density(),
        a.fill_count
    );
    println!(
        "tasks: {} surviving of {} dense ({:.1}% trimmed away)",
        a.surviving_tasks(),
        a.dense_tasks(),
        100.0 * (1.0 - a.surviving_tasks() as f64 / a.dense_tasks() as f64)
    );
    println!(
        "analysis cost: {:.1} ms, {:.2} MB",
        t0.elapsed().as_secs_f64() * 1e3,
        a.memory_bytes() as f64 / 1e6
    );
}

fn cmd_tune(m: HashMap<String, String>) {
    let n = get_f64(&m, "n", 1e6);
    let shape = get_f64(&m, "shape", 3.7e-4);
    let accuracy = get_f64(&m, "accuracy", 1e-4);
    let nodes = get_usize(&m, "nodes", 16);
    let cfg = hicma_parsec_config(machine_of(&m), nodes);
    let r = tune_tile_size(n, shape, accuracy, &cfg, &[]);
    println!("{:>8} {:>7} {:>10} {:>10}", "tile", "NT", "tasks", "time (s)");
    for s in &r.sweep {
        let mark = if s.tile_size == r.best.tile_size { "  <- best" } else { "" };
        println!("{:>8} {:>7} {:>10} {:>10.3}{mark}", s.tile_size, s.nt, s.tasks, s.seconds);
    }
}

fn cmd_snapshot(m: HashMap<String, String>) {
    let viruses = get_usize(&m, "viruses", 4);
    let points_per = get_usize(&m, "points", 400);
    let tile = get_usize(&m, "tile", 128);
    let accuracy = get_f64(&m, "accuracy", 1e-4);
    let out = m.get("out").cloned().unwrap_or_else(|| "snapshot.txt".to_string());
    let vcfg = VirusConfig { points_per_virus: points_per, ..Default::default() };
    let raw = virus_population(viruses, &vcfg, 2024);
    let points = apply_permutation(&raw, &hilbert_sort(&raw));
    let kernel = GaussianRbf::from_min_distance(&points);
    let a = TlrMatrix::from_generator(
        points.len(),
        tile,
        kernel.generator(&points),
        &CompressionConfig::with_accuracy(accuracy),
    );
    let snap = a.rank_snapshot();
    std::fs::write(&out, snap.to_text()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    let stats = snap.stats();
    println!(
        "wrote {out}: NT={} b={tile} density {:.3} max rank {}",
        snap.nt(),
        stats.density,
        stats.max
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let rest = parse_args(&args[1..]);
    match cmd.as_str() {
        "factorize" => cmd_factorize(rest),
        "simulate" => cmd_simulate(rest),
        "analyze" => cmd_analyze(rest),
        "snapshot" => cmd_snapshot(rest),
        "tune" => cmd_tune(rest),
        _ => usage(),
    }
}

#![warn(missing_docs)]
//! # hicma-parsec
//!
//! A from-scratch Rust reproduction of *"A Framework to Exploit Data
//! Sparsity in Tile Low-Rank Cholesky Factorization"* (IPDPS 2022):
//! HiCMA-style tile low-rank (TLR) linear algebra coupled with a
//! PaRSEC-style dataflow task runtime, applied to 3D unstructured mesh
//! deformation with Gaussian radial basis functions.
//!
//! This facade crate re-exports the public API of every workspace crate so
//! downstream users depend on a single package:
//!
//! * [`linalg`] — dense kernels (GEMM/SYRK/TRSM/POTRF, QR, pivoted QR, SVD)
//! * [`tlr`] — TLR tiles, threshold compression, TLR BLAS with recompression
//! * [`runtime`] — task graphs, shared-memory executor, distributed
//!   discrete-event simulator, machine models
//! * [`distribution`] — 2D block-cyclic / hybrid / band / diamond layouts
//! * [`mesh`] — synthetic 3D geometries, Hilbert ordering, RBF kernels
//! * [`cholesky`] — the paper's contribution: trimmed TLR Cholesky with
//!   rank-aware execution mapping, plus the Lorapo baseline
//!
//! See `examples/quickstart.rs` for the 60-second tour and DESIGN.md for
//! the paper → code map.

pub use distribution;
pub use hicma_core as cholesky;
pub use rbf_mesh as mesh;
pub use runtime;
pub use tlr_compress as tlr;
pub use tlr_linalg as linalg;

//! Offline shim for `proptest`: runs each property the configured
//! number of cases with inputs sampled from integer-range strategies
//! using a deterministic per-test seed. Failing cases report their
//! inputs; there is no shrinking (rerun with the printed inputs
//! instead).

/// Test-runner plumbing: config, case errors, the seeded runner.
pub mod test_runner {
    use std::fmt;

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property case (produced by `prop_assert!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Record a failed assertion.
        pub fn fail(message: impl Into<String>) -> Self {
            Self { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic case runner: SplitMix64 seeded from the test name.
    pub struct TestRunner {
        cases: u32,
        state: u64,
    }

    impl TestRunner {
        /// Build a runner for the named property.
        pub fn new(config: ProptestConfig, test_name: &str) -> Self {
            // FNV-1a over the name keeps distinct tests decorrelated
            // while staying reproducible run-to-run.
            let mut h: u64 = 0xCBF29CE484222325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001B3);
            }
            Self { cases: config.cases, state: h }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// Input strategies (integer/float ranges).
pub mod strategy {
    use super::test_runner::TestRunner;
    use std::ops::Range;

    /// A source of random test inputs.
    pub trait Strategy {
        /// The type of value the strategy produces.
        type Value;

        /// Draw one input.
        fn sample(&self, runner: &mut TestRunner) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (runner.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, runner: &mut TestRunner) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (runner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define property tests. Accepts an optional leading
/// `#![proptest_config(...)]` followed by `fn name(arg in strategy, ...)`
/// items carrying their own `#[test]` attributes.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`]: expands one `fn` at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __total = __config.cases;
            let mut __runner =
                $crate::test_runner::TestRunner::new(__config, stringify!($name));
            for __case in 0..__total {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __runner);
                )+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $($arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__err) = __outcome {
                    panic!(
                        "property {} failed at case {}/{}:\n  {}\n  inputs: {}",
                        stringify!($name), __case + 1, __total, __err, __inputs
                    );
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Assert a condition inside a property; failure aborts only the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {} ({})\n  left: {:?}\n  right: {:?}",
                    stringify!($left), stringify!($right), format!($($fmt)+), __l, __r
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respected(a in 3u64..9, b in -4i32..4, c in 1usize..2) {
            prop_assert!((3..9).contains(&a), "a = {}", a);
            prop_assert!((-4..4).contains(&b));
            prop_assert_eq!(c, 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let caught = std::panic::catch_unwind(|| {
            proptest! {
                #[allow(unused)]
                fn always_fails(x in 0u64..10) {
                    prop_assert!(false, "intentional");
                }
            }
            always_fails();
        });
        let msg = *caught.expect_err("must panic").downcast::<String>().unwrap();
        assert!(msg.contains("intentional") && msg.contains("inputs"), "got: {msg}");
    }
}

//! Parallel iterators over slices, backed by the work-stealing pool.
//!
//! Everything here is *indexed*: the sources are slices, so an iterator is
//! a `(length, item(i))` pair and parallelism is a chunked fork-join over
//! the index range (`pool::run_task_set`). That covers the combinators the
//! workspace uses — `map`/`collect`, `enumerate`, `for_each` — with the
//! exact chunk-independence real rayon guarantees: results never depend on
//! how indices were distributed over threads.

use crate::pool;
use std::marker::PhantomData;
use std::mem::{ManuallyDrop, MaybeUninit};

/// How many chunks a loop is split into per pool thread. More than one so
/// steal-half can rebalance uneven chunk costs (e.g. triangular updates).
const CHUNKS_PER_THREAD: usize = 4;

/// Raw-pointer wrapper asserting cross-thread use is safe (the parallel
/// loops index disjoint elements through it).
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: asserted by the construction sites — every element behind the
// pointer is touched by exactly one chunk.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Run `run_range(start, end)` over disjoint sub-ranges of `0..len` on
/// the pool; each element index lands in exactly one range.
fn run_chunked(len: usize, min_len: usize, run_range: &(dyn Fn(usize, usize) + Sync)) {
    if len == 0 {
        return;
    }
    let target_chunks = pool::current_num_threads() * CHUNKS_PER_THREAD;
    let chunk = len.div_ceil(target_chunks).max(min_len).max(1);
    let n_chunks = len.div_ceil(chunk);
    if n_chunks <= 1 {
        run_range(0, len);
        return;
    }
    pool::run_task_set(n_chunks, &|idx| {
        run_range(idx * chunk, ((idx + 1) * chunk).min(len));
    });
}

/// An indexed parallel iterator: a length plus a producer of the item at
/// each index. `for_each`/`enumerate` come for free.
pub trait IndexedParallelIterator: Sized + Sync {
    /// Element produced per index.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Whether the iterator has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Smallest number of items a chunk should hold (coarse items → 1).
    fn min_len(&self) -> usize {
        1
    }

    /// Produce item `i`.
    ///
    /// # Safety
    /// Callers must invoke this at most once per index across all threads
    /// (mutable iterators mint aliasing-free `&mut` borrows from it).
    unsafe fn item(&self, i: usize) -> Self::Item;

    /// Call `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let len = self.len();
        run_chunked(len, self.min_len(), &|start, end| {
            for i in start..end {
                // SAFETY: `run_chunked` ranges are disjoint, so each index
                // is produced exactly once.
                f(unsafe { self.item(i) });
            }
        });
    }

    /// Pair every item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate(self)
    }
}

/// Index-tagging adapter returned by
/// [`IndexedParallelIterator::enumerate`].
pub struct Enumerate<I>(I);

impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.0.len()
    }

    fn min_len(&self) -> usize {
        self.0.min_len()
    }

    unsafe fn item(&self, i: usize) -> Self::Item {
        // SAFETY: forwarded contract — each index produced at most once.
        (i, unsafe { self.0.item(i) })
    }
}

/// Borrowing parallel iterator over a slice ([`par_iter`]).
///
/// [`par_iter`]: IntoParallelRefIterator::par_iter
pub struct ParIter<'data, T: Sync> {
    slice: &'data [T],
}

impl<'data, T: Sync> IndexedParallelIterator for ParIter<'data, T> {
    type Item = &'data T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn item(&self, i: usize) -> Self::Item {
        &self.slice[i]
    }
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Map every element through `f` (evaluated in parallel at the
    /// consuming combinator).
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap { slice: self.slice, f }
    }
}

/// Mapped parallel iterator ([`ParIter::map`]).
pub struct ParMap<'data, T: Sync, F> {
    slice: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Evaluate the map in parallel and gather the results.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<R>,
    {
        let ParMap { slice, f } = self;
        C::from_indexed(slice.len(), &|i| f(&slice[i]))
    }

    /// Call `f` on every mapped value, in parallel.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let ParMap { slice, f } = self;
        run_chunked(slice.len(), 1, &|start, end| {
            for i in start..end {
                g(f(&slice[i]));
            }
        });
    }
}

/// Collections buildable from an indexed parallel producer
/// (the sink behind [`ParMap::collect`]).
pub trait FromParallelIterator<R: Send>: Sized {
    /// Build the collection from `produce(i)` for `i in 0..len`, where
    /// each index is produced exactly once, on an arbitrary thread.
    fn from_indexed(len: usize, produce: &(dyn Fn(usize) -> R + Sync)) -> Self;
}

impl<R: Send> FromParallelIterator<R> for Vec<R> {
    fn from_indexed(len: usize, produce: &(dyn Fn(usize) -> R + Sync)) -> Self {
        let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(len);
        // SAFETY: `MaybeUninit` needs no initialization; capacity == len.
        unsafe { out.set_len(len) };
        let base = SendPtr(out.as_mut_ptr());
        run_chunked(len, 1, &|start, end| {
            let base = base;
            for i in start..end {
                // SAFETY: chunk ranges are disjoint, so each slot is
                // written exactly once, by exactly one thread.
                unsafe { (*base.0.add(i)).write(produce(i)) };
            }
        });
        // If `produce` panicked, `run_chunked` has re-raised above and the
        // buffer (with its initialized prefix leaked elementwise, like
        // rayon's would be dropped — a shim simplification) is freed by
        // unwinding. Reaching here means every slot is initialized.
        let mut out = ManuallyDrop::new(out);
        // SAFETY: all `len` elements initialized; layout of
        // `MaybeUninit<R>` equals `R`.
        unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<R>(), len, out.capacity()) }
    }
}

/// Exclusive parallel iterator over a slice ([`par_iter_mut`]).
///
/// [`par_iter_mut`]: IntoParallelRefMutIterator::par_iter_mut
pub struct ParIterMut<'data, T: Send> {
    base: SendPtr<T>,
    len: usize,
    _borrow: PhantomData<&'data mut [T]>,
}

impl<'data, T: Send + Sync> IndexedParallelIterator for ParIterMut<'data, T> {
    type Item = &'data mut T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn item(&self, i: usize) -> Self::Item {
        debug_assert!(i < self.len);
        // SAFETY: the iterator owns an exclusive borrow of the slice and
        // the caller produces each index at most once → no aliasing.
        unsafe { &mut *self.base.0.add(i) }
    }
}

/// Parallel iterator over disjoint mutable chunks ([`par_chunks_mut`]).
///
/// [`par_chunks_mut`]: ParallelSliceMut::par_chunks_mut
pub struct ParChunksMut<'data, T: Send> {
    base: SendPtr<T>,
    len: usize,
    chunk_size: usize,
    _borrow: PhantomData<&'data mut [T]>,
}

impl<'data, T: Send + Sync> IndexedParallelIterator for ParChunksMut<'data, T> {
    type Item = &'data mut [T];

    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk_size)
    }

    unsafe fn item(&self, i: usize) -> Self::Item {
        let start = i * self.chunk_size;
        debug_assert!(start < self.len);
        let len = self.chunk_size.min(self.len - start);
        // SAFETY: chunks tile the exclusively-borrowed slice without
        // overlap and each index is produced at most once → no aliasing.
        unsafe { std::slice::from_raw_parts_mut(self.base.0.add(start), len) }
    }
}

/// `par_iter()` over a shared slice/vec.
pub trait IntoParallelRefIterator<'data> {
    /// Element yielded by the iterator.
    type Item: 'data;
    /// Concrete iterator type.
    type Iter;

    /// Iterate the collection in parallel.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> Self::Iter {
        ParIter { slice: self }
    }
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> Self::Iter {
        ParIter { slice: self.as_slice() }
    }
}

/// `par_iter_mut()` over an exclusive slice/vec.
pub trait IntoParallelRefMutIterator<'data> {
    /// Element yielded by the iterator.
    type Item: 'data;
    /// Concrete iterator type.
    type Iter;

    /// Iterate the collection in parallel, mutably.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: 'data + Send + Sync> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = ParIterMut<'data, T>;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        ParIterMut { base: SendPtr(self.as_mut_ptr()), len: self.len(), _borrow: PhantomData }
    }
}

impl<'data, T: 'data + Send + Sync> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = ParIterMut<'data, T>;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.as_mut_slice().par_iter_mut()
    }
}

/// `par_chunks_mut()` over a mutable slice.
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of `chunk_size` (the last may be short),
    /// iterated in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            base: SendPtr(self.as_mut_ptr()),
            len: self.len(),
            chunk_size,
            _borrow: PhantomData,
        }
    }
}

//! Offline shim for `rayon`: a real work-stealing thread-pool backend for
//! the API subset the workspace uses.
//!
//! Unlike the first-generation shim (which lowered `par_iter` to
//! sequential `std` iterators), this implementation actually runs on a
//! pool: a lazily-initialized global pool sized by
//! `std::thread::available_parallelism` (override with the
//! `RAYON_NUM_THREADS` environment variable), per-worker deques with
//! steal-half balancing, and genuine [`join`], [`scope`], and parallel
//! iterator implementations ([`prelude`]). Results are deterministic:
//! every combinator computes items independently per index, so the output
//! is bit-identical no matter how many threads the pool has.
//!
//! Differences from real rayon, by design of the shim:
//!
//! * only slice/`Vec` sources and the `map`/`collect`/`enumerate`/
//!   `for_each` combinators are provided (the subset the workspace uses);
//! * [`ThreadPool::install`] runs the closure on the *calling* thread
//!   (redirecting any parallel work it submits to the installed pool)
//!   rather than migrating it onto a pool thread;
//! * if a `collect` closure panics, already-produced elements are freed
//!   without running their destructors (a bounded leak, never unsoundness).

mod iter;
mod pool;

use std::sync::Arc;

pub use iter::{
    Enumerate, FromParallelIterator, IndexedParallelIterator, ParChunksMut, ParIter, ParIterMut,
    ParMap,
};

/// Parallel-iterator traits, like `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IndexedParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelSliceMut,
    };
}

/// Number of threads of the current pool: the pool this thread is a
/// worker of, the [`ThreadPool::install`]ed one, or the global pool
/// (initializing it if needed).
pub fn current_num_threads() -> usize {
    pool::current_num_threads()
}

/// Run `a` and `b`, potentially in parallel, and return both results.
///
/// `b` is offered to the pool while the calling thread runs `a`; if no
/// worker has picked `b` up by the time `a` finishes, the caller reclaims
/// and runs it inline (so `join` never blocks on an idle pool). Panics
/// from either closure propagate; if both panic, `a`'s payload wins.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if pool::current_num_threads() == 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }

    let rb_slot: std::sync::Mutex<Option<RB>> = std::sync::Mutex::new(None);
    let call_b = {
        let rb_slot = &rb_slot;
        let call: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            *rb_slot.lock().unwrap() = Some(b());
        });
        // SAFETY: the job is guaranteed finished or reclaimed-unexecuted
        // before this frame unwinds (see the guard below), so the borrow
        // of `rb_slot` and capture of `b` never dangle.
        unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(call)
        }
    };
    let job = Arc::new(pool::OnceJob::new(call_b));

    /// Unwind guard: if `a` panics, the queued `b` job must not survive
    /// this frame — reclaim it (dropping the closure) or wait it out.
    struct Reclaim<'a>(&'a pool::OnceJob);
    impl Drop for Reclaim<'_> {
        fn drop(&mut self) {
            if self.0.claim() {
                self.0.discard();
            } else {
                self.0.wait();
            }
        }
    }

    pool::submit_once(Arc::clone(&job));
    let guard = Reclaim(&job);
    let ra = a();
    std::mem::forget(guard);

    if job.claim() {
        // Still queued: run `b` inline; the queued copy becomes a no-op.
        let call = job.take_call().expect("reclaimed join job still has its closure");
        call();
        job.discard();
    } else {
        job.wait();
        if let Some(p) = job.take_panic() {
            std::panic::resume_unwind(p);
        }
    }
    let rb = rb_slot.into_inner().unwrap().expect("join arm b completed without a result");
    (ra, rb)
}

/// Scope for spawning borrowed tasks; see [`scope`].
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    _marker: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

struct ScopeState {
    pending: std::sync::atomic::AtomicUsize,
    panic: std::sync::Mutex<Option<Box<dyn std::any::Any + Send>>>,
    latch: pool::Latch,
}

impl ScopeState {
    fn complete_one(&self) {
        if self.pending.fetch_sub(1, std::sync::atomic::Ordering::AcqRel) == 1 {
            self.latch.set();
        }
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn `body` onto the pool. It may borrow anything that outlives
    /// the scope and may itself spawn further tasks.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.pending.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let call: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope = Scope { state: Arc::clone(&state), _marker: std::marker::PhantomData };
            if let Err(p) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&scope)))
            {
                state.panic.lock().unwrap().get_or_insert(p);
            }
            state.complete_one();
        });
        // SAFETY: `scope` waits for `pending == 0` before returning (even
        // on unwind), so the `'scope` borrows inside `call` outlive every
        // execution of it.
        let call = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(call)
        };
        pool::submit_once(Arc::new(pool::OnceJob::new(call)));
    }
}

/// Structured fork-join: `op` may [`Scope::spawn`] tasks borrowing data
/// outside the scope; `scope` returns only after every spawned task (and
/// transitively spawned tasks) has finished. The calling thread helps run
/// queued jobs while it waits. The first panic — from `op` or any task —
/// is propagated.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let state = Arc::new(ScopeState {
        // One guard credit for the scope body itself, so `pending` cannot
        // transiently hit zero while tasks are still being spawned.
        pending: std::sync::atomic::AtomicUsize::new(1),
        panic: std::sync::Mutex::new(None),
        latch: pool::Latch::new(),
    });
    let scope = Scope { state: Arc::clone(&state), _marker: std::marker::PhantomData };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| op(&scope)));
    state.complete_one();
    let shared = pool::current_shared();
    pool::help_until(
        &shared,
        || state.pending.load(std::sync::atomic::Ordering::Acquire) == 0,
        &state.latch,
    );
    match result {
        Err(p) => std::panic::resume_unwind(p),
        Ok(r) => {
            if let Some(p) = state.panic.lock().unwrap().take() {
                std::panic::resume_unwind(p);
            }
            r
        }
    }
}

/// Error building a thread pool (kept for API compatibility; the shim
/// builder only fails when installing a second global pool).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`]s, like `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Builder with default settings (threads from the environment).
    pub fn new() -> Self {
        Self::default()
    }

    /// Use `num_threads` threads; `0` (the default) means
    /// `RAYON_NUM_THREADS` or `available_parallelism`.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    fn resolved_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            pool::default_num_threads()
        }
    }

    /// Build a standalone pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { handle: pool::PoolHandle::new(self.resolved_num_threads()) })
    }

    /// Initialize the global pool with this configuration. Fails if the
    /// global pool already exists (first use wins, as in real rayon).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        pool::init_global(self.resolved_num_threads()).map_err(|()| ThreadPoolBuildError {
            message: "the global thread pool has already been initialized",
        })
    }
}

/// A standalone work-stealing pool. Dropping it joins the workers.
pub struct ThreadPool {
    handle: pool::PoolHandle,
}

impl ThreadPool {
    /// Run `op` with this pool as the submission target for any parallel
    /// work it performs, and return its result.
    ///
    /// Shim caveat: `op` executes on the *calling* thread (counted as one
    /// of the pool's `num_threads`), not on a pool worker.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        pool::with_installed(&self.handle.shared, op)
    }

    /// Number of threads of this pool (workers + participating caller).
    pub fn current_num_threads(&self) -> usize {
        self.handle.shared.num_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool4() -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(4).build().unwrap()
    }

    #[test]
    fn par_iter_maps() {
        let v: Vec<i32> = (0..1000).collect();
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        // Same result through an explicit multi-thread pool.
        let doubled4: Vec<i32> = pool4().install(|| v.par_iter().map(|x| x * 2).collect());
        assert_eq!(doubled4, doubled);
    }

    #[test]
    fn par_iter_for_each_sums() {
        let pool = pool4();
        let v: Vec<usize> = (0..4096).collect();
        let sum = AtomicUsize::new(0);
        pool.install(|| {
            v.par_iter().for_each(|&x| {
                sum.fetch_add(x, Ordering::Relaxed);
            })
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4096 * 4095 / 2);
    }

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut v = vec![0u8; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u8;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn par_chunks_mut_parallel_pool() {
        let pool = pool4();
        let mut v = vec![0usize; 10_000];
        pool.install(|| {
            v.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x = i * 7 + k;
                }
            })
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn par_iter_mut_touches_every_element() {
        let pool = pool4();
        let mut v: Vec<i64> = (0..5000).collect();
        pool.install(|| v.par_iter_mut().for_each(|x| *x = -*x));
        assert!(v.iter().enumerate().all(|(i, &x)| x == -(i as i64)));
    }

    #[test]
    fn join_returns_both_results() {
        let pool = pool4();
        let (a, b) = pool.install(|| join(|| 6 * 7, || "ok"));
        assert_eq!((a, b), (42, "ok"));
        // Nested joins from inside pool work.
        let (a, (b, c)) = pool.install(|| join(|| 1, || join(|| 2, || 3)));
        assert_eq!((a, b, c), (1, 2, 3));
    }

    #[test]
    fn join_propagates_panic_from_b() {
        let pool = pool4();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| join(|| 1, || panic!("boom-b")))
        }));
        assert!(r.is_err());
    }

    #[test]
    fn join_panic_in_a_does_not_leak_b() {
        let pool = pool4();
        let b_ran = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                join(
                    || panic!("boom-a"),
                    || {
                        b_ran.fetch_add(1, Ordering::SeqCst);
                    },
                )
            })
        }));
        assert!(r.is_err());
        // b either ran on a worker before the unwind reclaimed it, or was
        // discarded; it must not run afterwards.
        let after = b_ran.load(Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(b_ran.load(Ordering::SeqCst), after);
    }

    #[test]
    fn scope_waits_for_all_spawns() {
        let pool = pool4();
        let count = AtomicUsize::new(0);
        pool.install(|| {
            scope(|s| {
                for _ in 0..32 {
                    s.spawn(|s| {
                        count.fetch_add(1, Ordering::SeqCst);
                        s.spawn(|_| {
                            count.fetch_add(1, Ordering::SeqCst);
                        });
                    });
                }
            })
        });
        assert_eq!(count.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn scope_propagates_spawn_panic() {
        let pool = pool4();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| scope(|s| s.spawn(|_| panic!("boom-spawn"))))
        }));
        assert!(r.is_err());
    }

    #[test]
    fn collect_panic_propagates() {
        let pool = pool4();
        let v: Vec<usize> = (0..100).collect();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| -> Vec<usize> {
                v.par_iter().map(|&x| if x == 57 { panic!("boom-map") } else { x }).collect()
            })
        }));
        assert!(r.is_err());
    }

    #[test]
    fn results_bit_identical_across_thread_counts() {
        // The determinism contract the workspace's factorization relies
        // on: same input → same output bits, whatever the pool size.
        let v: Vec<u64> = (0..10_000).collect();
        let f = |&x: &u64| (x.wrapping_mul(0x9E3779B97F4A7C15) >> 7) as f64 * 1e-3;
        let mut outputs: Vec<Vec<f64>> = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let out: Vec<f64> = pool.install(|| v.par_iter().map(f).collect());
            outputs.push(out);
        }
        for out in &outputs[1..] {
            assert_eq!(
                out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                outputs[0].iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        let caller = std::thread::current().id();
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            (0..64).collect::<Vec<usize>>().par_iter().map(|_| std::thread::current().id()).collect()
        });
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn heavy_nested_use_terminates() {
        // Nested parallelism: par_iter inside par_iter chunks.
        let pool = pool4();
        let outer: Vec<usize> = (0..16).collect();
        let total: usize = pool.install(|| {
            let sums: Vec<usize> = outer
                .par_iter()
                .map(|&i| {
                    let inner: Vec<usize> = (0..256).map(|j| i * 256 + j).collect();
                    let squares: Vec<usize> = inner.par_iter().map(|&x| x % 97).collect();
                    squares.iter().sum()
                })
                .collect();
            sums.iter().sum()
        });
        let expect: usize = (0..16 * 256).map(|x: usize| x % 97).sum();
        assert_eq!(total, expect);
    }
}

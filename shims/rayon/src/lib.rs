//! Offline shim for `rayon`: the prelude traits the workspace uses
//! (`par_iter`, `par_chunks_mut`) implemented as *sequential* std
//! iterators. Semantics are identical; only data parallelism is lost.
//! The `Sync`/`Send` bounds of real rayon are kept so code stays
//! portable to the real crate.

/// Parallel-iterator traits (sequential in this shim).
pub mod prelude {
    /// `par_iter()` over a shared slice/vec — sequential here.
    pub trait IntoParallelRefIterator<'data> {
        /// Element yielded by the iterator.
        type Item: 'data;
        /// Iterator type (a plain std iterator in this shim).
        type Iter: Iterator<Item = Self::Item>;

        /// Iterate the collection ("in parallel").
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `par_chunks_mut()` over a mutable slice — sequential here.
    pub trait ParallelSliceMut<T: Send> {
        /// Split into mutable chunks of `chunk_size` ("in parallel").
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_maps() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut v = vec![0u8; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u8;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }
}

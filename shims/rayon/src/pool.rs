//! The work-stealing thread pool behind the shim's parallel iterators.
//!
//! Layout mirrors rayon's runtime at a much smaller scale:
//!
//! * one lazily-initialized **global pool**, sized by
//!   `std::thread::available_parallelism` and overridable with the
//!   `RAYON_NUM_THREADS` environment variable (read once, at first use);
//! * **per-worker deques** of jobs: owners pop LIFO from the back, thieves
//!   take *half* of a victim's queue FIFO from the front (steal-half keeps
//!   chunked loops balanced without a steal per chunk);
//! * the thread that submits a batch **participates**: it executes jobs
//!   while it waits, so an `N`-thread pool spawns `N − 1` OS workers and
//!   the caller is the `N`-th.
//!
//! Jobs may reference the submitting thread's stack (`TaskSet::body`,
//! `OnceJob::call`). This is sound because every submission path blocks
//! until its jobs have finished (or reclaims them unexecuted) before the
//! referenced frame unwinds — the same latch discipline real rayon uses.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::thread::JoinHandle;

/// One unit of pool work.
pub(crate) enum Job {
    /// Chunk `idx` of a fork-join loop.
    Chunk { set: Arc<TaskSet>, idx: usize },
    /// A one-shot closure (`join`'s second arm, a `scope` spawn).
    Once(Arc<OnceJob>),
}

/// A set-once gate: waiters block until [`Latch::set`] fires.
pub(crate) struct Latch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    pub(crate) fn new() -> Self {
        Self { done: Mutex::new(false), cv: Condvar::new() }
    }

    pub(crate) fn set(&self) {
        *self.done.lock().unwrap() = true;
        self.cv.notify_all();
    }

    pub(crate) fn wait(&self) {
        let mut g = self.done.lock().unwrap();
        while !*g {
            g = self.cv.wait(g).unwrap();
        }
    }
}

/// Shared state of a fork-join loop: `n_chunks` jobs all running the same
/// chunk body, a countdown of unfinished chunks, and the first panic.
pub(crate) struct TaskSet {
    /// Chunk body on the submitting thread's stack; valid until the
    /// countdown reaches zero (the submitter waits on `latch` first).
    body: *const (dyn Fn(usize) + Sync),
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    latch: Latch,
}

// SAFETY: `body` is only dereferenced by `run_chunk`, which executes while
// the submitting frame is pinned by `run_task_set`'s wait; the closure
// itself is `Sync` so shared calls from many workers are fine.
unsafe impl Send for TaskSet {}
unsafe impl Sync for TaskSet {}

impl TaskSet {
    fn run_chunk(&self, idx: usize) {
        // SAFETY: see the `Send`/`Sync` note above.
        let body = unsafe { &*self.body };
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| body(idx))) {
            self.panic.lock().unwrap().get_or_insert(p);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.latch.set();
        }
    }
}

const ONCE_QUEUED: u8 = 0;
const ONCE_CLAIMED: u8 = 1;
const ONCE_FINISHED: u8 = 2;

/// A claim-once closure job. The state machine lets a `join` caller
/// *revoke* a still-queued job and run (or drop) it inline, which is what
/// makes blocking on the latch deadlock-free: we only ever block while
/// another thread is actively executing the job.
pub(crate) struct OnceJob {
    call: Mutex<Option<Box<dyn FnOnce() + Send>>>,
    state: AtomicU8,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    latch: Latch,
}

impl OnceJob {
    /// Wrap a closure. The `'static` bound is the caller's lie: `join` and
    /// `Scope::spawn` transmute shorter-lived closures in, and guarantee
    /// the job is finished or reclaimed before the borrowed frame dies.
    pub(crate) fn new(call: Box<dyn FnOnce() + Send>) -> Self {
        Self {
            call: Mutex::new(Some(call)),
            state: AtomicU8::new(ONCE_QUEUED),
            panic: Mutex::new(None),
            latch: Latch::new(),
        }
    }

    /// Claim and run. Returns `false` if another thread holds the claim.
    pub(crate) fn run(&self) -> bool {
        if !self.claim() {
            return false;
        }
        let call = self.call.lock().unwrap().take().expect("claimed OnceJob has its closure");
        if let Err(p) = catch_unwind(AssertUnwindSafe(call)) {
            *self.panic.lock().unwrap() = Some(p);
        }
        self.finish();
        true
    }

    /// Try to take the exclusive right to execute (or discard) the job.
    pub(crate) fn claim(&self) -> bool {
        self.state
            .compare_exchange(ONCE_QUEUED, ONCE_CLAIMED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Drop the closure of a job claimed via [`OnceJob::claim`] without
    /// running it (panic-unwind cleanup in `join`).
    pub(crate) fn discard(&self) {
        self.call.lock().unwrap().take();
        self.finish();
    }

    /// Take the closure of a job claimed via [`OnceJob::claim`], to run
    /// it inline on the claiming thread.
    pub(crate) fn take_call(&self) -> Option<Box<dyn FnOnce() + Send>> {
        self.call.lock().unwrap().take()
    }

    fn finish(&self) {
        self.state.store(ONCE_FINISHED, Ordering::Release);
        self.latch.set();
    }

    /// Block until the job has finished executing (it must be claimed).
    pub(crate) fn wait(&self) {
        self.latch.wait();
    }

    /// Take the panic payload the job captured, if any.
    pub(crate) fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap().take()
    }
}

/// State shared by a pool's workers and submitters.
pub(crate) struct Shared {
    /// One deque per worker. A pool of `num_threads == 1` still has one
    /// deque so external `scope`/`join` jobs have somewhere to queue.
    deques: Vec<Mutex<VecDeque<Job>>>,
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    num_threads: usize,
}

impl Shared {
    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Queue jobs and wake sleeping workers. `home` is the submitting
    /// worker's own deque (nested submissions stay local and get stolen);
    /// external submitters deal the batch round-robin across all deques.
    pub(crate) fn push_jobs(&self, jobs: Vec<Job>, home: Option<usize>) {
        match home {
            Some(w) => self.deques[w].lock().unwrap().extend(jobs),
            None => {
                let n = self.deques.len();
                for (i, job) in jobs.into_iter().enumerate() {
                    self.deques[i % n].lock().unwrap().push_back(job);
                }
            }
        }
        let _g = self.sleep.lock().unwrap();
        self.wake.notify_all();
    }

    /// Pop from our own deque, else steal. Workers (`me = Some`) steal
    /// half of the first non-empty victim into their own deque; external
    /// helpers (`me = None`) take a single job.
    fn find_job(&self, me: Option<usize>) -> Option<Job> {
        if let Some(w) = me {
            if let Some(job) = self.deques[w].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        let n = self.deques.len();
        let start = me.map_or(0, |w| w + 1);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == me {
                continue;
            }
            let mut vq = self.deques[victim].lock().unwrap();
            let len = vq.len();
            if len == 0 {
                continue;
            }
            let take = match me {
                Some(_) => len.div_ceil(2),
                None => 1,
            };
            let mut stolen: VecDeque<Job> = vq.drain(..take).collect();
            drop(vq);
            let first = stolen.pop_front();
            if let (Some(w), false) = (me, stolen.is_empty()) {
                self.deques[w].lock().unwrap().extend(stolen);
            }
            return first;
        }
        None
    }

    fn has_any_job(&self) -> bool {
        self.deques.iter().any(|d| !d.lock().unwrap().is_empty())
    }
}

fn run_job(job: Job) {
    match job {
        Job::Chunk { set, idx } => set.run_chunk(idx),
        Job::Once(once) => {
            once.run();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(CurrentPool { shared: Arc::downgrade(&shared), worker: Some(index) })
    });
    loop {
        if let Some(job) = shared.find_job(Some(index)) {
            run_job(job);
            continue;
        }
        let g = shared.sleep.lock().unwrap();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Re-check under the sleep lock: `push_jobs` notifies while
        // holding it, so a submission either lands before this check or
        // its notification wakes the wait below — no lost wake-ups.
        if shared.has_any_job() {
            continue;
        }
        let _g = shared.wake.wait(g).unwrap();
    }
}

/// Which pool the current thread submits to: its own (worker threads),
/// an [`crate::ThreadPool::install`]ed one, or the global pool.
struct CurrentPool {
    shared: Weak<Shared>,
    worker: Option<usize>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<CurrentPool>> = const { std::cell::RefCell::new(None) };
}

/// Handle owning a pool's worker threads. Dropping it shuts the workers
/// down (the global pool's handle is never dropped).
pub(crate) struct PoolHandle {
    pub(crate) shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl PoolHandle {
    pub(crate) fn new(num_threads: usize) -> Self {
        let num_threads = num_threads.max(1);
        let shared = Arc::new(Shared {
            deques: (0..num_threads.saturating_sub(1).max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            num_threads,
        });
        let workers = (0..num_threads - 1)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{index}"))
                    .spawn(move || worker_loop(shared, index))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        Self { shared, workers }
    }
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.sleep.lock().unwrap();
            self.shared.wake.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

static GLOBAL: OnceLock<PoolHandle> = OnceLock::new();

/// Pool size from the environment: `RAYON_NUM_THREADS` if set and
/// positive, else `available_parallelism`.
pub(crate) fn default_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Run `op` with `shared` installed as this thread's submission target,
/// restoring the previous binding afterwards (also on unwind).
pub(crate) fn with_installed<R>(shared: &Arc<Shared>, op: impl FnOnce() -> R) -> R {
    struct Restore(Option<CurrentPool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = CURRENT.with(|c| {
        c.borrow_mut().replace(CurrentPool { shared: Arc::downgrade(shared), worker: None })
    });
    let _restore = Restore(prev);
    op()
}

/// Resolve the pool the current thread targets, plus its worker index in
/// that pool (for deque-local pushes).
fn current_pool() -> (Arc<Shared>, Option<usize>) {
    let bound = CURRENT.with(|c| {
        c.borrow().as_ref().and_then(|p| p.shared.upgrade().map(|s| (s, p.worker)))
    });
    match bound {
        Some(found) => found,
        None => (Arc::clone(&GLOBAL.get_or_init(|| PoolHandle::new(default_num_threads())).shared), None),
    }
}

/// Threads (workers + participating submitter) of the current pool.
pub(crate) fn current_num_threads() -> usize {
    current_pool().0.num_threads()
}

/// The current pool's shared state (for `scope`'s help-wait loop).
pub(crate) fn current_shared() -> Arc<Shared> {
    current_pool().0
}

/// Install the global pool with an explicit size. Errors if it was
/// already initialized (lazily or by an earlier call).
pub(crate) fn init_global(num_threads: usize) -> Result<(), ()> {
    let mut fresh = false;
    GLOBAL.get_or_init(|| {
        fresh = true;
        PoolHandle::new(num_threads)
    });
    if fresh {
        Ok(())
    } else {
        Err(())
    }
}

/// Fork-join over `n_chunks` chunks: `body(idx)` runs exactly once per
/// `idx in 0..n_chunks`, distributed over the pool; the calling thread
/// participates. Panics in any chunk propagate to the caller (first one
/// wins; remaining chunks still run to completion).
pub(crate) fn run_task_set(n_chunks: usize, body: &(dyn Fn(usize) + Sync)) {
    if n_chunks == 0 {
        return;
    }
    let (shared, me) = current_pool();
    if n_chunks == 1 || shared.num_threads() == 1 {
        for idx in 0..n_chunks {
            body(idx);
        }
        return;
    }
    // SAFETY: lifetime erasure only — the pointer is dead (remaining == 0,
    // checked below before returning) before `body`'s frame can unwind.
    let body = unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const (dyn Fn(usize) + Sync)>(
            body,
        )
    };
    let set = Arc::new(TaskSet {
        body,
        remaining: AtomicUsize::new(n_chunks),
        panic: Mutex::new(None),
        latch: Latch::new(),
    });
    let jobs: Vec<Job> = (1..n_chunks).map(|idx| Job::Chunk { set: Arc::clone(&set), idx }).collect();
    shared.push_jobs(jobs, me);
    // Run chunk 0 ourselves, then help drain whatever is queued (ours or
    // not) until every chunk of this set has finished.
    set.run_chunk(0);
    while set.remaining.load(Ordering::Acquire) > 0 {
        match shared.find_job(me) {
            Some(job) => run_job(job),
            // Remaining chunks are executing on other threads; block
            // until the countdown closes the latch.
            None => set.latch.wait(),
        }
    }
    let panic = set.panic.lock().unwrap().take();
    if let Some(p) = panic {
        resume_unwind(p);
    }
}

/// Queue a one-shot job on the current pool and return the handle plus
/// the pool it went to (so the caller can keep helping that same pool).
pub(crate) fn submit_once(job: Arc<OnceJob>) -> Arc<Shared> {
    let (shared, me) = current_pool();
    shared.push_jobs(vec![Job::Once(job)], me);
    shared
}

/// Help-run queued jobs until `done()` turns true, blocking on `latch`
/// when the queues are empty.
pub(crate) fn help_until(shared: &Arc<Shared>, done: impl Fn() -> bool, latch: &Latch) {
    let me = CURRENT.with(|c| {
        c.borrow().as_ref().and_then(|p| {
            p.worker.filter(|_| p.shared.upgrade().is_some_and(|s| Arc::ptr_eq(&s, shared)))
        })
    });
    while !done() {
        match shared.find_job(me) {
            Some(job) => run_job(job),
            None => latch.wait(),
        }
    }
}

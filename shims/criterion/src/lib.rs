//! Offline shim for `criterion`: the benchmark-definition API the
//! workspace uses, backed by a simple wall-clock runner. Each benchmark
//! executes a short warm-up plus a handful of timed iterations and
//! prints the mean per-iteration time. No statistics, plots, or saved
//! baselines — enough to compare kernels by eye and to keep the bench
//! targets compiling offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Timed iterations per benchmark (after one warm-up call).
const MEASURE_ITERS: u32 = 5;

/// Identifier of a single benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// Identifier from a bare parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// How batched inputs are sized (ignored by the shim's runner).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// One input per iteration.
    LargeInput,
    /// Small inputs, many per batch.
    SmallInput,
}

/// Per-benchmark timing harness handed to the closure.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    fn new() -> Self {
        Self { total: Duration::ZERO, iters: 0 }
    }

    /// Time `routine` over the shim's fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        for _ in 0..MEASURE_ITERS {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` on fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label}: no iterations recorded");
        } else {
            let mean = self.total / self.iters;
            println!("{label}: mean {mean:?} over {} iters", self.iters);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Define and immediately run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        let mut bencher = Bencher::new();
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Define and immediately run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let mut bencher = Bencher::new();
        f(&mut bencher, input);
        bencher.report(&label);
        self
    }

    /// End the group (no-op beyond symmetry with real criterion).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Define and immediately run an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().id;
        let mut bencher = Bencher::new();
        f(&mut bencher);
        bencher.report(&label);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.bench_function("iter", |b| b.iter(|| 1 + 1));
        g.bench_function(format!("string_id_{}", 2), |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3, |b, &x| {
            b.iter(|| x * x)
        });
        g.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &x| {
            b.iter_batched(|| x, |v| v + 1, BatchSize::LargeInput)
        });
        g.finish();
    }

    criterion_group!(benches, trivial_bench);

    #[test]
    fn group_runs_all_benchmarks() {
        benches();
    }
}

//! Offline shim for `serde`: the workspace only *derives*
//! `Serialize`/`Deserialize` to document which types are
//! wire/trace-format stable — it never actually serializes (there is no
//! serde_json in the dependency tree). So the traits are empty markers
//! and the derives are no-ops.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that would be serializable with real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable with real serde.
pub trait Deserialize<'de> {}

/// Blanket impls so `T: Serialize` bounds (if any appear) are vacuous.
mod blanket {
    impl<T: ?Sized> super::Serialize for T {}
    impl<'de, T: ?Sized> super::Deserialize<'de> for T {}
}

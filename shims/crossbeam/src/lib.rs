//! Offline shim for `crossbeam`: the `channel` and `deque` API the
//! workspace uses. Channels delegate to `std::sync::mpsc`; the
//! work-stealing deque is a `Mutex<VecDeque>` — correct (every task is
//! handed out exactly once) but without crossbeam's lock-free fast path.

/// MPSC channels with crossbeam's `unbounded()` constructor.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// Create an unbounded channel (sender clonable, receiver single).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Work-stealing deques (mutex-based stand-in).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// Source was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// Transient conflict; retry (never produced by this shim).
        Retry,
    }

    /// Owner side of a worker deque (LIFO pop from the back).
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    /// Thief side of a worker deque (FIFO steal from the front).
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self { queue: Arc::clone(&self.queue) }
        }
    }

    fn locked<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        q.lock().unwrap_or_else(PoisonError::into_inner)
    }

    impl<T> Worker<T> {
        /// New LIFO worker deque.
        pub fn new_lifo() -> Self {
            Self { queue: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// New FIFO worker deque.
        pub fn new_fifo() -> Self {
            Self::new_lifo()
        }

        /// Push a task onto the owner's end.
        pub fn push(&self, task: T) {
            locked(&self.queue).push_back(task);
        }

        /// Pop a task from the owner's end (LIFO).
        pub fn pop(&self) -> Option<T> {
            locked(&self.queue).pop_back()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }

        /// Create a stealer handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { queue: Arc::clone(&self.queue) }
        }
    }

    /// Move up to `max - 1` extra tasks into `dest` and return one.
    fn steal_batch_from<T>(src: &Mutex<VecDeque<T>>, dest: &Worker<T>) -> Steal<T> {
        const BATCH: usize = 4;
        let mut src = locked(src);
        let Some(first) = src.pop_front() else {
            return Steal::Empty;
        };
        let extra = (src.len() / 2).min(BATCH - 1);
        if extra > 0 {
            let mut dst = locked(&dest.queue);
            for _ in 0..extra {
                match src.pop_front() {
                    Some(t) => dst.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    impl<T> Stealer<T> {
        /// Steal a batch of tasks into `dest`, returning one of them.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            steal_batch_from(&self.queue, dest)
        }

        /// Steal a single task.
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// Global injector queue (FIFO).
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// New empty injector.
        pub fn new() -> Self {
            Self { queue: Mutex::new(VecDeque::new()) }
        }

        /// Push a task.
        pub fn push(&self, task: T) {
            locked(&self.queue).push_back(task);
        }

        /// Steal a batch of tasks into `dest`, returning one of them.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            steal_batch_from(&self.queue, dest)
        }

        /// Whether the injector is currently empty.
        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn channel_send_recv() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv().is_err(), "all senders dropped");
    }

    #[test]
    fn deque_lifo_and_steal() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2), "owner pops LIFO");
        let other = Worker::new_lifo();
        assert_eq!(s.steal_batch_and_pop(&other), Steal::Success(1));
        assert_eq!(s.steal_batch_and_pop(&other), Steal::Empty);
    }

    #[test]
    fn injector_distributes() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        let Steal::Success(first) = inj.steal_batch_and_pop(&w) else {
            panic!("injector must yield");
        };
        assert_eq!(first, 0);
        let mut got = vec![first];
        while let Some(t) = w.pop() {
            got.push(t);
        }
        while let Steal::Success(t) = inj.steal_batch_and_pop(&w) {
            got.push(t);
            while let Some(t) = w.pop() {
                got.push(t);
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}

//! Offline shim for `rand` 0.8: `StdRng` + the `Rng`/`SeedableRng`
//! trait subset the workspace uses (`seed_from_u64`, `gen`,
//! `gen_range`). The generator is SplitMix64 — statistically fine for
//! test-point clouds and fault schedules, deterministic per seed, and
//! (unlike the real StdRng) stable across shim versions.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that `Rng::gen` can produce.
pub trait StandardSample: Sized {
    /// Draw a value from the "standard" distribution of `Self`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // modulo bias is ≤ 2⁻⁶⁴·span — irrelevant for test data
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods (blanket-implemented).
pub trait Rng: RngCore {
    /// Draw a value of an inferred type.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014)
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(10usize..11);
            assert_eq!(u, 10);
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean should be ~0.5");
    }
}

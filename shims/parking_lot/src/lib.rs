//! Offline shim for `parking_lot`: the `Mutex`/`RwLock` API the workspace
//! uses, implemented over `std::sync`. Lock poisoning (which parking_lot
//! does not have) is translated by recovering the inner guard — a
//! panicked critical section behaves like parking_lot's "lock simply
//! unlocks" semantics.

use std::sync::{self, PoisonError};

/// Mutual exclusion with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (no poison error, like parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's panic-free `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a reader-writer lock.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}

//! No-op derive macros backing the offline `serde` shim. The real
//! trait impls come from blanket impls in the `serde` shim, so the
//! derives only need to exist and expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
